//! The immutable attributed bipartite graph `G = (U, V, E, A)`.
//!
//! Storage is compressed sparse row (CSR) in **both** directions so that
//! neighborhoods of upper and lower vertices are equally cheap. Adjacency
//! lists are sorted ascending; the enumeration algorithms rely on that for
//! linear-time intersections.

use serde::{Deserialize, Serialize};

/// Dense vertex index within one side of the graph.
pub type VertexId = u32;

/// Dense attribute-value index within one side's attribute domain.
///
/// The paper mainly studies two values per side (`A_n^U = A_n^V = 2`),
/// but everything here is generic in the number of values.
pub type AttrValueId = u16;

/// Which side of the bipartite graph a vertex lives on.
///
/// The paper calls `U` the *upper* side and `V` the *lower* side; the
/// lower side is the default fair side in the single-side model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The upper side `U(G)`.
    Upper,
    /// The lower side `V(G)` (default fair side).
    Lower,
}

impl Side {
    /// The opposite side.
    #[inline]
    pub fn other(self) -> Side {
        match self {
            Side::Upper => Side::Lower,
            Side::Lower => Side::Upper,
        }
    }
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Side::Upper => f.write_str("U"),
            Side::Lower => f.write_str("V"),
        }
    }
}

/// One side's CSR arrays plus per-vertex attribute values.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct SideStore {
    /// `offsets[v]..offsets[v+1]` indexes `adj` for vertex `v`.
    pub offsets: Vec<usize>,
    /// Concatenated, per-vertex-sorted neighbor lists (ids on the other side).
    pub adj: Vec<VertexId>,
    /// Attribute value of each vertex.
    pub attrs: Vec<AttrValueId>,
}

impl SideStore {
    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    #[inline]
    fn len(&self) -> usize {
        self.attrs.len()
    }
}

/// An immutable attributed bipartite graph.
///
/// Construct through [`crate::GraphBuilder`], the generators in
/// [`crate::generate`], or the readers in [`crate::io`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BipartiteGraph {
    pub(crate) upper: SideStore,
    pub(crate) lower: SideStore,
    /// Number of distinct attribute values on the upper side (`A_n^U`).
    pub(crate) n_upper_attrs: AttrValueId,
    /// Number of distinct attribute values on the lower side (`A_n^V`).
    pub(crate) n_lower_attrs: AttrValueId,
}

impl BipartiteGraph {
    /// An empty graph with the given attribute domain sizes.
    pub fn empty(n_upper_attrs: AttrValueId, n_lower_attrs: AttrValueId) -> Self {
        BipartiteGraph {
            upper: SideStore {
                offsets: vec![0],
                adj: Vec::new(),
                attrs: Vec::new(),
            },
            lower: SideStore {
                offsets: vec![0],
                adj: Vec::new(),
                attrs: Vec::new(),
            },
            n_upper_attrs,
            n_lower_attrs,
        }
    }

    #[inline]
    pub(crate) fn store(&self, side: Side) -> &SideStore {
        match side {
            Side::Upper => &self.upper,
            Side::Lower => &self.lower,
        }
    }

    /// Number of vertices on `side`.
    #[inline]
    pub fn n(&self, side: Side) -> usize {
        self.store(side).len()
    }

    /// Number of upper-side vertices `|U|`.
    #[inline]
    pub fn n_upper(&self) -> usize {
        self.upper.len()
    }

    /// Number of lower-side vertices `|V|`.
    #[inline]
    pub fn n_lower(&self) -> usize {
        self.lower.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.upper.adj.len()
    }

    /// Edge density `|E| / (|U| * |V|)`; zero for degenerate graphs.
    pub fn density(&self) -> f64 {
        let cells = self.n_upper() as f64 * self.n_lower() as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.n_edges() as f64 / cells
        }
    }

    /// Number of attribute values on `side` (`A_n^U` / `A_n^V`).
    #[inline]
    pub fn n_attr_values(&self, side: Side) -> AttrValueId {
        match side {
            Side::Upper => self.n_upper_attrs,
            Side::Lower => self.n_lower_attrs,
        }
    }

    /// Sorted neighbor list of vertex `v` on `side` (ids are on the
    /// opposite side).
    #[inline]
    pub fn neighbors(&self, side: Side, v: VertexId) -> &[VertexId] {
        self.store(side).neighbors(v)
    }

    /// Degree `D(v, G)` of vertex `v` on `side`.
    #[inline]
    pub fn degree(&self, side: Side, v: VertexId) -> usize {
        self.neighbors(side, v).len()
    }

    /// Attribute value `v.val` of vertex `v` on `side`.
    #[inline]
    pub fn attr(&self, side: Side, v: VertexId) -> AttrValueId {
        self.store(side).attrs[v as usize]
    }

    /// All attribute values of `side` as a slice indexed by vertex id.
    #[inline]
    pub fn attrs(&self, side: Side) -> &[AttrValueId] {
        &self.store(side).attrs
    }

    /// Whether edge `(u, v)` (upper `u`, lower `v`) exists; `O(log deg)`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.upper.neighbors(u).binary_search(&v).is_ok()
    }

    /// Attribute degree `D_a(v)` (Definition 7): how many neighbors of
    /// `v` carry attribute value `a`. `O(deg(v))`.
    pub fn attr_degree(&self, side: Side, v: VertexId, a: AttrValueId) -> usize {
        let other = self.store(side.other());
        self.neighbors(side, v)
            .iter()
            .filter(|&&w| other.attrs[w as usize] == a)
            .count()
    }

    /// All attribute degrees of `v` at once, as a vector indexed by
    /// attribute value of the opposite side.
    pub fn attr_degrees(&self, side: Side, v: VertexId) -> Vec<usize> {
        let other = self.store(side.other());
        let n_attrs = self.n_attr_values(side.other()) as usize;
        let mut out = vec![0usize; n_attrs];
        for &w in self.neighbors(side, v) {
            out[other.attrs[w as usize] as usize] += 1;
        }
        out
    }

    /// Iterate all edges as `(upper, lower)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n_upper() as VertexId)
            .flat_map(move |u| self.upper.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Common neighborhood of a set `s` of `side`-vertices: the vertices
    /// on the opposite side adjacent to *every* member of `s`.
    ///
    /// Returns the full opposite side when `s` is empty (the neutral
    /// element for intersection), matching `N(S)` in the paper where the
    /// enumeration starts from `L = U`.
    pub fn common_neighbors(&self, side: Side, s: &[VertexId]) -> Vec<VertexId> {
        if s.is_empty() {
            return (0..self.n(side.other()) as VertexId).collect();
        }
        let mut acc: Vec<VertexId> = self.neighbors(side, s[0]).to_vec();
        let mut tmp = Vec::new();
        for &v in &s[1..] {
            crate::intersect_sorted_into(&acc, self.neighbors(side, v), &mut tmp);
            std::mem::swap(&mut acc, &mut tmp);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Return the graph with the two sides swapped (upper ↔ lower).
    ///
    /// The single-side fair biclique code fixes the fair side to
    /// [`Side::Lower`]; to mine with the *upper* side fair, flip the
    /// graph, mine, and flip the results. `O(|V| + |E|)`.
    pub fn flipped(&self) -> BipartiteGraph {
        BipartiteGraph {
            upper: self.lower.clone(),
            lower: self.upper.clone(),
            n_upper_attrs: self.n_lower_attrs,
            n_lower_attrs: self.n_upper_attrs,
        }
    }

    /// Approximate heap footprint in bytes (CSR arrays + attributes).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.upper.offsets.capacity() + self.lower.offsets.capacity()) * size_of::<usize>()
            + (self.upper.adj.capacity() + self.lower.adj.capacity()) * size_of::<VertexId>()
            + (self.upper.attrs.capacity() + self.lower.attrs.capacity()) * size_of::<AttrValueId>()
    }

    /// Internal consistency check used by tests and `debug_assert!`s:
    /// offsets monotone, adjacency sorted & deduped, forward/backward
    /// CSR symmetric, attribute values within the declared domain.
    pub fn validate(&self) -> Result<(), String> {
        for (name, store, n_other, n_attrs) in [
            ("upper", &self.upper, self.lower.len(), self.n_upper_attrs),
            ("lower", &self.lower, self.upper.len(), self.n_lower_attrs),
        ] {
            if store.offsets.len() != store.len() + 1 {
                return Err(format!("{name}: offsets length mismatch"));
            }
            if store.offsets[0] != 0 || *store.offsets.last().unwrap() != store.adj.len() {
                return Err(format!("{name}: offset endpoints wrong"));
            }
            for w in store.offsets.windows(2) {
                if w[0] > w[1] {
                    return Err(format!("{name}: offsets not monotone"));
                }
            }
            for v in 0..store.len() {
                let nb = store.neighbors(v as VertexId);
                if !nb.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("{name}: adjacency of {v} not sorted/deduped"));
                }
                if let Some(&m) = nb.last() {
                    if (m as usize) >= n_other {
                        return Err(format!("{name}: neighbor id {m} out of range"));
                    }
                }
            }
            for (v, &a) in store.attrs.iter().enumerate() {
                if a >= n_attrs && n_attrs > 0 {
                    return Err(format!("{name}: vertex {v} attr {a} out of domain"));
                }
            }
        }
        if self.upper.adj.len() != self.lower.adj.len() {
            return Err("edge count mismatch between directions".into());
        }
        // Spot-check symmetry.
        for u in 0..self.upper.len() as VertexId {
            for &v in self.upper.neighbors(u) {
                if self.lower.neighbors(v).binary_search(&u).is_err() {
                    return Err(format!("edge ({u},{v}) missing reverse direction"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn toy() -> BipartiteGraph {
        // U = {0,1,2}, V = {0,1,2,3}; upper attrs {0,1}, lower attrs {0,1}
        let mut b = GraphBuilder::new(2, 2);
        b.set_attrs_upper(&[0, 1, 0]);
        b.set_attrs_lower(&[0, 0, 1, 1]);
        for (u, v) in [(0, 0), (0, 1), (1, 0), (1, 2), (2, 1), (2, 2), (2, 3)] {
            b.add_edge(u, v);
        }
        b.build().unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = toy();
        assert_eq!(g.n_upper(), 3);
        assert_eq!(g.n_lower(), 4);
        assert_eq!(g.n_edges(), 7);
        assert_eq!(g.neighbors(Side::Upper, 2), &[1, 2, 3]);
        assert_eq!(g.neighbors(Side::Lower, 0), &[0, 1]);
        assert_eq!(g.degree(Side::Lower, 3), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.attr(Side::Upper, 1), 1);
        assert_eq!(g.attr(Side::Lower, 2), 1);
        g.validate().unwrap();
    }

    #[test]
    fn attr_degrees() {
        let g = toy();
        // upper 2 has neighbors {1,2,3} with lower attrs {0,1,1}
        assert_eq!(g.attr_degree(Side::Upper, 2, 0), 1);
        assert_eq!(g.attr_degree(Side::Upper, 2, 1), 2);
        assert_eq!(g.attr_degrees(Side::Upper, 2), vec![1, 2]);
        // lower 0 has neighbors {0,1} with upper attrs {0,1}
        assert_eq!(g.attr_degrees(Side::Lower, 0), vec![1, 1]);
    }

    #[test]
    fn common_neighbors() {
        let g = toy();
        // N({0}) on lower side, i.e. common neighbors of lower {0}
        assert_eq!(g.common_neighbors(Side::Lower, &[0]), vec![0, 1]);
        // lower {1,2} share upper {2}
        assert_eq!(g.common_neighbors(Side::Lower, &[1, 2]), vec![2]);
        // empty set -> whole opposite side
        assert_eq!(g.common_neighbors(Side::Lower, &[]), vec![0, 1, 2]);
        // upper {0,1} share lower {0}
        assert_eq!(g.common_neighbors(Side::Upper, &[0, 1]), vec![0]);
    }

    #[test]
    fn density_and_empty() {
        let g = toy();
        assert!((g.density() - 7.0 / 12.0).abs() < 1e-12);
        let e = BipartiteGraph::empty(2, 2);
        assert_eq!(e.density(), 0.0);
        assert_eq!(e.n_edges(), 0);
        e.validate().unwrap();
    }

    #[test]
    fn edge_iterator_roundtrip() {
        let g = toy();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.n_edges());
        for (u, v) in edges {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn flipped_swaps_sides() {
        let g = toy();
        let f = g.flipped();
        f.validate().unwrap();
        assert_eq!(f.n_upper(), g.n_lower());
        assert_eq!(f.n_lower(), g.n_upper());
        assert_eq!(f.n_edges(), g.n_edges());
        assert_eq!(f.attrs(Side::Upper), g.attrs(Side::Lower));
        for (u, v) in g.edges() {
            assert!(f.has_edge(v, u));
        }
        // Double flip is the identity.
        let ff = f.flipped();
        assert!(ff.edges().zip(g.edges()).all(|(a, b)| a == b));
    }

    #[test]
    fn side_other_roundtrip() {
        assert_eq!(Side::Upper.other(), Side::Lower);
        assert_eq!(Side::Lower.other(), Side::Upper);
        assert_eq!(Side::Upper.other().other(), Side::Upper);
        assert_eq!(format!("{}/{}", Side::Upper, Side::Lower), "U/V");
    }
}
