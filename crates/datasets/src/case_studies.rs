//! Schema-matched generators for the paper's three case studies
//! (§V-C): DBLP scholar–paper graphs (DBDA / DBDS), the Jobs
//! recommendation scenario, and the Movies recommendation scenario.
//!
//! Each generator reproduces the *structure that makes the case study
//! work*: community-structured bipartite interactions with the same
//! attribute schema and the same bias the paper highlights (popular
//! jobs / old movies receive disproportionately many interactions, so
//! plain CF recommends them disproportionately often).

use bigraph::{BipartiteGraph, GraphBuilder, VertexId};
use fair_biclique::biclique::Biclique;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A labeled attributed bipartite graph for one case study.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Scenario name (`DBDA`, `DBDS`, `Jobs`, `Movies`).
    pub name: &'static str,
    /// The attributed bipartite graph.
    pub graph: BipartiteGraph,
    /// Human-readable names of the upper attribute values.
    pub upper_attr_names: Vec<&'static str>,
    /// Human-readable names of the lower attribute values.
    pub lower_attr_names: Vec<&'static str>,
    /// Display label of each upper vertex.
    pub upper_labels: Vec<String>,
    /// Display label of each lower vertex.
    pub lower_labels: Vec<String>,
}

impl CaseStudy {
    /// Pretty-print a biclique with labels and attribute tallies,
    /// Fig. 9/10-style.
    pub fn describe(&self, bc: &Biclique) -> String {
        use bigraph::Side;
        let mut out = String::new();
        let mut u_tally = vec![0usize; self.upper_attr_names.len()];
        for &u in &bc.upper {
            u_tally[self.graph.attr(Side::Upper, u) as usize] += 1;
        }
        let mut l_tally = vec![0usize; self.lower_attr_names.len()];
        for &v in &bc.lower {
            l_tally[self.graph.attr(Side::Lower, v) as usize] += 1;
        }
        out.push_str(&format!("[{}] upper side (", self.name));
        for (i, n) in self.upper_attr_names.iter().enumerate() {
            out.push_str(&format!(
                "{}{}={}",
                if i > 0 { ", " } else { "" },
                n,
                u_tally[i]
            ));
        }
        out.push_str("): ");
        out.push_str(
            &bc.upper
                .iter()
                .map(|&u| self.upper_labels[u as usize].clone())
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str("\n        lower side (");
        for (i, n) in self.lower_attr_names.iter().enumerate() {
            out.push_str(&format!(
                "{}{}={}",
                if i > 0 { ", " } else { "" },
                n,
                l_tally[i]
            ));
        }
        out.push_str("): ");
        out.push_str(
            &bc.lower
                .iter()
                .map(|&v| self.lower_labels[v as usize].clone())
                .collect::<Vec<_>>()
                .join(", "),
        );
        out
    }
}

/// DBLP-style collaboration graph builder shared by [`dbda`] / [`dbds`].
///
/// Papers are the upper side (attribute: venue area), scholars the
/// lower side (attribute: `S`enior / `J`unior, as the paper assigns by
/// publication history). Scholars form research groups; each group
/// publishes a run of papers with 3–6 authors drawn from the group
/// (occasionally borrowing an external co-author).
fn dblp_like(
    name: &'static str,
    area_names: [&'static str; 2],
    n_groups: usize,
    seed: u64,
) -> CaseStudy {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(2, 2);
    let mut scholar_attr: Vec<u16> = Vec::new();
    let mut paper_attr: Vec<u16> = Vec::new();
    let mut groups: Vec<Vec<VertexId>> = Vec::new();

    // Research groups of 5-8 scholars with a senior/junior mix.
    for _ in 0..n_groups {
        let size = rng.random_range(5..9usize);
        let mut members = Vec::with_capacity(size);
        for _ in 0..size {
            let id = scholar_attr.len() as VertexId;
            // ~45% seniors (attr 0 = S).
            scholar_attr.push(if rng.random_bool(0.45) { 0 } else { 1 });
            members.push(id);
        }
        groups.push(members);
    }

    // Each group publishes 6-12 papers; venue area leans to the
    // group's home area but crosses over ~30% of the time (that's what
    // creates bi-side-fair DB+AI collaborations).
    for (gi, members) in groups.iter().enumerate() {
        let home_area = (gi % 2) as u16;
        let n_papers = rng.random_range(6..13usize);
        for _ in 0..n_papers {
            let paper = paper_attr.len() as VertexId;
            let area = if rng.random_bool(0.3) {
                1 - home_area
            } else {
                home_area
            };
            paper_attr.push(area);
            let n_auth = rng.random_range(3..=6usize).min(members.len());
            let mut authors = members.clone();
            authors.shuffle(&mut rng);
            authors.truncate(n_auth);
            // Occasional external co-author.
            if rng.random_bool(0.2) && !groups.is_empty() {
                let og = rng.random_range(0..groups.len());
                let other = &groups[og];
                authors.push(other[rng.random_range(0..other.len())]);
            }
            for &a in &authors {
                b.add_edge(paper, a);
            }
        }
    }

    b.set_attrs_upper(&paper_attr);
    b.set_attrs_lower(&scholar_attr);
    b.ensure_vertices(paper_attr.len(), scholar_attr.len());
    let graph = b.build().expect("case-study graphs are valid");
    let upper_labels = (0..graph.n_upper())
        .map(|i| {
            format!(
                "paper-{i} ({})",
                area_names[graph.attrs(bigraph::Side::Upper)[i] as usize]
            )
        })
        .collect();
    let lower_labels = (0..graph.n_lower())
        .map(|i| {
            format!(
                "scholar-{i} ({})",
                if graph.attrs(bigraph::Side::Lower)[i] == 0 {
                    "S"
                } else {
                    "J"
                }
            )
        })
        .collect();
    CaseStudy {
        name,
        graph,
        upper_attr_names: area_names.to_vec(),
        lower_attr_names: vec!["S", "J"],
        upper_labels,
        lower_labels,
    }
}

/// The DBDA case study: database + AI scholars (paper attrs `DB`/`AI`,
/// scholar attrs `S`/`J`).
pub fn dbda(seed: u64) -> CaseStudy {
    dblp_like("DBDA", ["DB", "AI"], 40, seed)
}

/// The DBDS case study: database + systems scholars (paper attrs
/// `DB`/`SYS`).
pub fn dbds(seed: u64) -> CaseStudy {
    dblp_like("DBDS", ["DB", "SYS"], 32, seed ^ 0xd0d5)
}

/// Recommendation-scenario generator shared by [`jobs`] / [`movies`]:
/// users (upper, attribute = demographic) × items (lower, attribute =
/// 0 for the *advantaged* class — popular jobs / old movies — and 1
/// for the disadvantaged class).
///
/// Users sit in latent taste groups; interactions go to items of the
/// user's group, but advantaged items receive `bias`× the interaction
/// probability — exactly the exposure bias the paper's CF baseline
/// inherits and the fair biclique mining corrects.
#[allow(clippy::too_many_arguments)]
fn rec_scenario(
    name: &'static str,
    user_attr_names: [&'static str; 2],
    item_attr_names: [&'static str; 2],
    n_users: usize,
    n_items: usize,
    n_groups: usize,
    bias: f64,
    seed: u64,
) -> CaseStudy {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(2, 2);
    b.ensure_vertices(n_users, n_items);

    // Item attributes: first half advantaged (0), second half not (1) —
    // the paper splits jobs by application count at the median.
    let item_attrs: Vec<u16> = (0..n_items)
        .map(|i| if i < n_items / 2 { 0 } else { 1 })
        .collect();
    let user_attrs: Vec<u16> = (0..n_users)
        .map(|_| u16::from(rng.random_bool(0.35)))
        .collect();
    let user_group: Vec<usize> = (0..n_users)
        .map(|_| rng.random_range(0..n_groups))
        .collect();
    let item_group: Vec<usize> = (0..n_items)
        .map(|_| rng.random_range(0..n_groups))
        .collect();

    #[allow(clippy::needless_range_loop)]
    for u in 0..n_users {
        for i in 0..n_items {
            let same = user_group[u] == item_group[i];
            let mut p = if same { 0.30 } else { 0.01 };
            if item_attrs[i] == 0 {
                p = (p * bias).min(0.9);
            }
            if rng.random_bool(p) {
                b.add_edge(u as VertexId, i as VertexId);
            }
        }
    }
    b.set_attrs_upper(&user_attrs);
    b.set_attrs_lower(&item_attrs);
    let graph = b.build().expect("case-study graphs are valid");
    let upper_labels = (0..n_users)
        .map(|i| format!("user-{i} ({})", user_attr_names[user_attrs[i] as usize]))
        .collect();
    let lower_labels = (0..n_items)
        .map(|i| {
            format!(
                "{}-{i} ({})",
                name.to_lowercase(),
                item_attr_names[item_attrs[i] as usize]
            )
        })
        .collect();
    CaseStudy {
        name,
        graph,
        upper_attr_names: user_attr_names.to_vec(),
        lower_attr_names: item_attr_names.to_vec(),
        upper_labels,
        lower_labels,
    }
}

/// The Jobs case study: users (American `A` / foreigner `F`) × jobs
/// (popular `P` / less popular `U`), with popularity bias in the
/// interactions.
pub fn jobs(seed: u64) -> CaseStudy {
    rec_scenario("Jobs", ["A", "F"], ["P", "U"], 180, 60, 6, 2.5, seed)
}

/// The Movies case study: users × movies (old `O` / new `N`), with
/// exposure bias towards old movies (the paper's "cold start").
pub fn movies(seed: u64) -> CaseStudy {
    rec_scenario(
        "Movies",
        ["A", "F"],
        ["O", "N"],
        140,
        90,
        5,
        2.5,
        seed ^ 0x4031e,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::Side;

    #[test]
    fn dbda_structure() {
        let cs = dbda(7);
        cs.graph.validate().unwrap();
        assert!(cs.graph.n_upper() > 100, "papers");
        assert!(cs.graph.n_lower() > 100, "scholars");
        assert!(cs.graph.n_edges() > 500);
        // Both attribute values present on both sides.
        for side in [Side::Upper, Side::Lower] {
            let mut seen = [false; 2];
            for &a in cs.graph.attrs(side) {
                seen[a as usize] = true;
            }
            assert!(seen[0] && seen[1]);
        }
        assert_eq!(cs.upper_labels.len(), cs.graph.n_upper());
        assert!(cs.upper_labels[0].starts_with("paper-0"));
    }

    #[test]
    fn dbds_differs_from_dbda() {
        let a = dbda(7);
        let d = dbds(7);
        assert_eq!(d.name, "DBDS");
        assert_eq!(d.upper_attr_names, vec!["DB", "SYS"]);
        assert_ne!(a.graph.n_edges(), d.graph.n_edges());
    }

    #[test]
    fn jobs_bias_present() {
        let cs = jobs(3);
        cs.graph.validate().unwrap();
        // Popular jobs (attr 0) must receive more applications overall.
        let mut per_attr = [0usize; 2];
        for v in 0..cs.graph.n_lower() as u32 {
            per_attr[cs.graph.attr(Side::Lower, v) as usize] += cs.graph.degree(Side::Lower, v);
        }
        assert!(
            per_attr[0] as f64 > 1.5 * per_attr[1] as f64,
            "popular {} vs unpopular {}",
            per_attr[0],
            per_attr[1]
        );
    }

    #[test]
    fn movies_bias_present() {
        let cs = movies(3);
        let mut per_attr = [0usize; 2];
        for v in 0..cs.graph.n_lower() as u32 {
            per_attr[cs.graph.attr(Side::Lower, v) as usize] += cs.graph.degree(Side::Lower, v);
        }
        assert!(per_attr[0] > per_attr[1], "old movies get more exposure");
    }

    #[test]
    fn describe_formats_biclique() {
        let cs = dbda(9);
        let bc = Biclique::new(vec![0, 1], vec![0, 1, 2]);
        let text = cs.describe(&bc);
        assert!(text.contains("DBDA"));
        assert!(text.contains("paper-0"));
        assert!(text.contains("scholar-2"));
    }

    #[test]
    fn deterministic() {
        let a = jobs(11);
        let b = jobs(11);
        assert_eq!(a.graph.n_edges(), b.graph.n_edges());
        let c = jobs(12);
        assert_ne!(a.graph.n_edges(), c.graph.n_edges());
    }
}
