//! Parameters and run configuration for the fair biclique models.

pub use bigraph::candidate::Substrate;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cooperative cancellation handle shared between a run and its
/// controller (e.g. the `fbe-service` admission layer, or a signal
/// handler).
///
/// Cloning shares the flag. Attach it to a run with
/// [`Budget::with_cancel`]; every enumeration clock — the maximal-
/// biclique walker's and all expansion stages', serial or parallel —
/// checks the flag at branch granularity (each [`BudgetClock::tick`]),
/// so a cancelled run stops within a handful of branch expansions and
/// reports [`StopReason::Cancelled`]. Cancellation is one-way and
/// sticky: there is no reset.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation (idempotent, thread-safe).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Cooperative interruption for the *preparation* phases: pruning
/// (including the colorful-core cascade) and candidate-plan
/// construction.
///
/// Enumeration honors its [`Budget`] at branch granularity, but
/// preparation used to run to completion unconditionally — a cold
/// query could overshoot its deadline by one full un-cancellable
/// `prepare`. Passing a `PrepareCtl` lets the prune cascade re-check
/// the deadline and cancel token at stage boundaries (and
/// periodically inside the peel loops), so an expired query stops in
/// bounded time and reports [`StopReason::Deadline`] /
/// [`StopReason::Cancelled`] instead of silently running long.
#[derive(Debug, Clone, Default)]
pub struct PrepareCtl {
    /// Abort preparation once this instant passes.
    pub deadline_at: Option<Instant>,
    /// Abort preparation when this token is cancelled.
    pub cancel: Option<CancelToken>,
}

impl PrepareCtl {
    /// No interruption: preparation always runs to completion.
    pub const UNBOUNDED: PrepareCtl = PrepareCtl {
        deadline_at: None,
        cancel: None,
    };

    /// True when no limit is attached (the probe can never fire).
    pub fn is_unbounded(&self) -> bool {
        self.deadline_at.is_none() && self.cancel.is_none()
    }

    /// Interruption probe. Reads the cancel flag and the clock, so
    /// hot loops should gate calls on a step counter (the prune
    /// cascade probes every few thousand peel steps and at every
    /// stage boundary).
    pub fn interrupted(&self) -> Option<StopReason> {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(d) = self.deadline_at {
            if Instant::now() >= d {
                return Some(StopReason::Deadline);
            }
        }
        None
    }
}

/// Why a run stopped before exhausting the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StopReason {
    /// The [`Budget::max_nodes`] cap tripped.
    NodeCap,
    /// The [`Budget::max_time`] deadline passed.
    Deadline,
    /// The [`Budget::max_results`] cap tripped.
    ResultCap,
    /// The run's [`CancelToken`] was cancelled.
    Cancelled,
}

impl StopReason {
    const CODES: [StopReason; 4] = [
        StopReason::NodeCap,
        StopReason::Deadline,
        StopReason::ResultCap,
        StopReason::Cancelled,
    ];

    fn code(self) -> u8 {
        1 + Self::CODES.iter().position(|&r| r == self).expect("listed") as u8
    }

    fn from_code(code: u8) -> Option<StopReason> {
        (code != 0).then(|| Self::CODES[(code - 1) as usize])
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StopReason::NodeCap => "node-cap",
            StopReason::Deadline => "deadline",
            StopReason::ResultCap => "result-cap",
            StopReason::Cancelled => "cancelled",
        })
    }
}

/// The three integer thresholds of the absolute fairness models
/// (Definitions 3 and 4 of the paper).
///
/// * `alpha` — minimum size of the non-fair side (SSFBC) or per-
///   attribute minimum on the upper side (BSFBC).
/// * `beta` — per-attribute minimum on the lower (fair) side.
/// * `delta` — maximum pairwise difference between attribute counts on
///   a fair side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FairParams {
    /// `α ≥ 1`.
    pub alpha: u32,
    /// `β ≥ 0`.
    pub beta: u32,
    /// `δ ≥ 0`.
    pub delta: u32,
}

/// Parameter validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// `alpha` must be at least 1 (an empty non-fair side is degenerate).
    AlphaZero,
    /// `theta` must lie in `[0, 0.5]` (the paper derives `θ ≤ 0.5` for
    /// two attribute values; above `1/n` no set can be proportional).
    ThetaOutOfRange(f64),
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::AlphaZero => f.write_str("alpha must be >= 1"),
            ParamError::ThetaOutOfRange(t) => write!(f, "theta {t} outside [0, 0.5]"),
        }
    }
}

impl std::error::Error for ParamError {}

impl FairParams {
    /// Validated constructor.
    pub fn new(alpha: u32, beta: u32, delta: u32) -> Result<Self, ParamError> {
        if alpha == 0 {
            return Err(ParamError::AlphaZero);
        }
        Ok(FairParams { alpha, beta, delta })
    }

    /// Unchecked constructor for tests and sweeps (still asserts in
    /// debug builds).
    pub fn unchecked(alpha: u32, beta: u32, delta: u32) -> Self {
        debug_assert!(alpha >= 1);
        FairParams { alpha, beta, delta }
    }
}

impl std::fmt::Display for FairParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "α={} β={} δ={}", self.alpha, self.beta, self.delta)
    }
}

/// Parameters of the proportion models (Definitions 5 and 6): the
/// absolute thresholds plus the fairness-ratio threshold `θ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProParams {
    /// Absolute thresholds.
    pub base: FairParams,
    /// Ratio threshold `θ ∈ [0, 0.5]`: every attribute value must make
    /// up at least a `θ` fraction of its fair side.
    pub theta: f64,
}

impl ProParams {
    /// Validated constructor.
    pub fn new(alpha: u32, beta: u32, delta: u32, theta: f64) -> Result<Self, ParamError> {
        let base = FairParams::new(alpha, beta, delta)?;
        if !(0.0..=0.5).contains(&theta) {
            return Err(ParamError::ThetaOutOfRange(theta));
        }
        Ok(ProParams { base, theta })
    }
}

impl std::fmt::Display for ProParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} θ={}", self.base, self.theta)
    }
}

/// Which pruning stage to run before enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PruneKind {
    /// No pruning (baseline for the pruning-effect experiments).
    None,
    /// Fair α-β core only (Algorithm 1 / BFCore for bi-side runs).
    FCore,
    /// Colorful fair α-β core (Algorithm 2 / BCFCore for bi-side runs);
    /// the paper's default.
    #[default]
    Colorful,
}

/// Vertex selection order for the branch-and-bound search
/// (`IDOrd` / `DegOrd` in the paper's Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum VertexOrder {
    /// Ascending vertex id (`IDOrd`).
    IdAsc,
    /// Non-increasing degree, ties by id (`DegOrd`); the paper's
    /// recommended ordering.
    #[default]
    DegreeDesc,
}

/// Resource limits for a single enumeration run.
///
/// The paper uses a 24-hour wall-clock limit and prints `INF` for runs
/// that exceed it; [`Budget`] supports a deadline, a deterministic
/// search-node cap (what most tests use), and a hard cap on emitted
/// results.
///
/// All three limits are **global** to a run: a multi-threaded run
/// draws every worker's ticks from one shared countdown (see
/// [`crate::parallel`]), so `max_results = K` yields at most `K`
/// results regardless of the thread count.
///
/// A budget may additionally carry a [`CancelToken`]
/// ([`Budget::with_cancel`]) that an external controller flips to stop
/// the run cooperatively; the run then reports
/// [`StopReason::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Abort after visiting this many search-tree nodes.
    pub max_nodes: Option<u64>,
    /// Abort after this much wall-clock time.
    pub max_time: Option<Duration>,
    /// Emit at most this many results, then abort.
    pub max_results: Option<u64>,
    /// Cooperative external cancellation (checked every branch).
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// No limits.
    pub const UNLIMITED: Budget = Budget {
        max_nodes: None,
        max_time: None,
        max_results: None,
        cancel: None,
    };

    /// Only a node cap.
    pub fn nodes(max_nodes: u64) -> Budget {
        Budget {
            max_nodes: Some(max_nodes),
            ..Self::UNLIMITED
        }
    }

    /// Only a wall-clock cap.
    pub fn time(max_time: Duration) -> Budget {
        Budget {
            max_time: Some(max_time),
            ..Self::UNLIMITED
        }
    }

    /// Only a result cap: emit at most `max_results` results.
    pub fn results(max_results: u64) -> Budget {
        Budget {
            max_results: Some(max_results),
            ..Self::UNLIMITED
        }
    }

    /// This budget with a cooperative [`CancelToken`] attached.
    pub fn with_cancel(self, cancel: CancelToken) -> Budget {
        Budget {
            cancel: Some(cancel),
            ..self
        }
    }

    pub(crate) fn start(&self) -> BudgetClock {
        BudgetClock {
            max_nodes: self.max_nodes.unwrap_or(u64::MAX),
            deadline: self.max_time.map(|d| Instant::now() + d),
            nodes: 0,
            exhausted: false,
            stop: None,
            max_results: self.max_results.unwrap_or(u64::MAX),
            results: 0,
            results_exempt: false,
            cancel: self.cancel.clone(),
            shared: None,
        }
    }
}

/// Which shared countdown a clock's node ticks draw from.
///
/// Mirroring the serial enumerators — where the maximal-biclique
/// walker and the combinatorial expander each start their own
/// [`BudgetClock`] from the same [`Budget`] — a shared budget keeps
/// two independent node countdowns, one per role. Results always
/// share a single countdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BudgetLane {
    /// Search-tree nodes of the maximal-biclique walk.
    Walk,
    /// Expansion steps (`Combination` subsets and fair-set checks).
    Expand,
}

/// Atomic countdowns shared by every worker of a parallel run.
///
/// `tick`/`try_result` acquire from these *before* doing work, so the
/// totals are exact: across all workers at most `max_nodes` node
/// ticks succeed per lane and at most `max_results` results are
/// emitted, regardless of the thread count. Once any limit trips, the
/// sticky `exhausted` flag stops every other worker at its next tick.
#[derive(Debug)]
pub(crate) struct SharedBudget {
    walk_nodes: AtomicU64,
    expand_nodes: AtomicU64,
    results: AtomicU64,
    max_nodes: u64,
    max_results: u64,
    deadline: Option<Instant>,
    exhausted: AtomicBool,
    /// First tripped [`StopReason`] (0 = still running), for
    /// `RunReport::truncated_by`.
    reason: AtomicU8,
    cancel: Option<CancelToken>,
}

impl SharedBudget {
    pub(crate) fn new(budget: Budget) -> Arc<SharedBudget> {
        Arc::new(SharedBudget {
            walk_nodes: AtomicU64::new(0),
            expand_nodes: AtomicU64::new(0),
            results: AtomicU64::new(0),
            max_nodes: budget.max_nodes.unwrap_or(u64::MAX),
            max_results: budget.max_results.unwrap_or(u64::MAX),
            deadline: budget.max_time.map(|d| Instant::now() + d),
            exhausted: AtomicBool::new(false),
            reason: AtomicU8::new(0),
            cancel: budget.cancel,
        })
    }

    /// A worker-local clock drawing node ticks from `lane`.
    pub(crate) fn clock(self: &Arc<Self>, lane: BudgetLane) -> BudgetClock {
        BudgetClock {
            max_nodes: u64::MAX, // enforced via the shared countdown
            deadline: self.deadline,
            nodes: 0,
            exhausted: false,
            stop: None,
            max_results: u64::MAX,
            results: 0,
            results_exempt: false,
            cancel: self.cancel.clone(),
            shared: Some((Arc::clone(self), lane)),
        }
    }

    /// True once any global limit has tripped.
    pub(crate) fn is_exhausted(&self) -> bool {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// The first limit that tripped (None while running).
    pub(crate) fn stop_reason(&self) -> Option<StopReason> {
        StopReason::from_code(self.reason.load(Ordering::Relaxed))
    }

    fn trip(&self, reason: StopReason) {
        // First reason wins; later trips keep the original cause.
        let _ =
            self.reason
                .compare_exchange(0, reason.code(), Ordering::Relaxed, Ordering::Relaxed);
        self.exhausted.store(true, Ordering::Relaxed);
    }

    /// Acquire one node tick from `lane`; false when the cap is spent.
    fn acquire_node(&self, lane: BudgetLane) -> bool {
        let ctr = match lane {
            BudgetLane::Walk => &self.walk_nodes,
            BudgetLane::Expand => &self.expand_nodes,
        };
        if ctr.fetch_add(1, Ordering::Relaxed) >= self.max_nodes {
            self.trip(StopReason::NodeCap);
            return false;
        }
        true
    }

    /// Acquire the right to emit one result; false when spent.
    fn acquire_result(&self) -> bool {
        if self.results.fetch_add(1, Ordering::Relaxed) >= self.max_results {
            self.trip(StopReason::ResultCap);
            return false;
        }
        true
    }
}

/// Running budget state threaded through the enumerators.
///
/// Standalone by default; [`SharedBudget::clock`] produces clocks
/// whose ticks draw from a run-global atomic countdown instead, so
/// concurrent workers stop together. `nodes` always counts this
/// clock's local tick attempts (per-worker statistics).
#[derive(Debug, Clone)]
pub(crate) struct BudgetClock {
    max_nodes: u64,
    deadline: Option<Instant>,
    pub(crate) nodes: u64,
    pub(crate) exhausted: bool,
    /// Why this clock stopped (local cause; see
    /// [`BudgetClock::stop_reason`] for the run-wide answer).
    stop: Option<StopReason>,
    max_results: u64,
    results: u64,
    /// When set, `try_result` does not draw from the result budget
    /// (this clock feeds an intermediate stage, not final output).
    results_exempt: bool,
    /// Cooperative cancellation, checked on every tick.
    cancel: Option<CancelToken>,
    shared: Option<(Arc<SharedBudget>, BudgetLane)>,
}

impl BudgetClock {
    /// This clock with result accounting disabled (intermediate
    /// stages still honor node/time limits and the global stop flag).
    pub(crate) fn exempt_results(mut self) -> Self {
        self.results_exempt = true;
        self
    }

    /// Why the run stopped: this clock's own cause, or — for shared
    /// clocks — whatever limit tripped run-wide first.
    pub(crate) fn stop_reason(&self) -> Option<StopReason> {
        self.stop
            .or_else(|| self.shared.as_ref().and_then(|(s, _)| s.stop_reason()))
    }

    /// Stop this clock for `reason`, propagating to the shared budget
    /// (and thereby every sibling worker) when there is one.
    #[cold]
    fn fail(&mut self, reason: StopReason) -> bool {
        self.exhausted = true;
        if self.stop.is_none() {
            self.stop = Some(reason);
        }
        if let Some((shared, _)) = &self.shared {
            shared.trip(reason);
        }
        false
    }

    /// Record one search node; returns false when the budget is spent.
    #[inline]
    pub(crate) fn tick(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return self.fail(StopReason::Cancelled);
            }
        }
        self.nodes += 1;
        if let Some((shared, lane)) = &self.shared {
            if shared.is_exhausted() || !shared.acquire_node(*lane) {
                self.exhausted = true;
                self.stop = self.stop.or_else(|| shared.stop_reason());
                return false;
            }
        } else if self.nodes > self.max_nodes {
            return self.fail(StopReason::NodeCap);
        }
        // Check the clock rarely; Instant::now is not free.
        if self.nodes % 1024 == 0 {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    return self.fail(StopReason::Deadline);
                }
            }
        }
        true
    }

    /// Acquire the right to emit one result. Emission sites call this
    /// *before* `sink.emit`, so a result cap of `K` yields exactly
    /// `min(K, total)` results — globally, when the clock is shared.
    #[inline]
    pub(crate) fn try_result(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        if self.results_exempt {
            if let Some((shared, _)) = &self.shared {
                if shared.is_exhausted() {
                    self.exhausted = true;
                    self.stop = self.stop.or_else(|| shared.stop_reason());
                    return false;
                }
            }
            return true;
        }
        if let Some((shared, _)) = &self.shared {
            if shared.is_exhausted() || !shared.acquire_result() {
                self.exhausted = true;
                self.stop = self.stop.or_else(|| shared.stop_reason());
                return false;
            }
        } else {
            if self.results >= self.max_results {
                return self.fail(StopReason::ResultCap);
            }
            self.results += 1;
        }
        true
    }
}

/// Full configuration of an enumeration run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Pruning stage (default: colorful core, the paper's setting).
    pub prune: PruneKind,
    /// Vertex selection order (default: `DegOrd`).
    pub order: VertexOrder,
    /// Resource limits (default: unlimited).
    pub budget: Budget,
    /// Worker threads for the collected pipelines (default 1 =
    /// serial). Values above 1 run `FairBCEM++` / `BFairBCEM++` / the
    /// proportion enumerators / maximum search on the work-stealing
    /// engine in [`crate::parallel`]. The engine clamps the actual
    /// worker count to the available work and a hard cap of 512.
    pub threads: usize,
    /// Opt-in deterministic output: sort results into the canonical
    /// order ([`crate::results::canonical_order`]) so collected runs
    /// are byte-identical across thread counts (default off —
    /// discovery order).
    pub sorted: bool,
    /// Enumeration-tree depth down to which the parallel engine
    /// re-splits subtrees into stealable tasks (default 1: top-level
    /// branches only). Raise for skewed instances where a handful of
    /// top-level branches dominate the work. Ignored by serial runs.
    pub split_depth: u32,
    /// Candidate-set substrate for the enumeration hot path (default
    /// [`Substrate::Auto`]: bitset rows when the pruned core is small
    /// and dense, sorted-vec merge otherwise). Results are identical
    /// across substrates — only speed and memory differ.
    pub substrate: Substrate,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            prune: PruneKind::default(),
            order: VertexOrder::default(),
            budget: Budget::default(),
            threads: 1,
            sorted: false,
            split_depth: 1,
            substrate: Substrate::Auto,
        }
    }
}

impl RunConfig {
    /// Config with everything default except the ordering.
    pub fn with_order(order: VertexOrder) -> Self {
        RunConfig {
            order,
            ..Default::default()
        }
    }

    /// Config with everything default except the pruning stage.
    pub fn with_prune(prune: PruneKind) -> Self {
        RunConfig {
            prune,
            ..Default::default()
        }
    }

    /// Config with everything default except the worker thread count.
    pub fn with_threads(threads: usize) -> Self {
        RunConfig {
            threads: threads.max(1),
            ..Default::default()
        }
    }

    /// Config with everything default except the candidate substrate.
    pub fn with_substrate(substrate: Substrate) -> Self {
        RunConfig {
            substrate,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_validation() {
        assert!(FairParams::new(1, 0, 0).is_ok());
        assert_eq!(FairParams::new(0, 1, 1), Err(ParamError::AlphaZero));
        assert!(ProParams::new(1, 1, 1, 0.5).is_ok());
        assert!(ProParams::new(1, 1, 1, 0.0).is_ok());
        assert!(matches!(
            ProParams::new(1, 1, 1, 0.6),
            Err(ParamError::ThetaOutOfRange(_))
        ));
        assert!(matches!(
            ProParams::new(1, 1, 1, -0.1),
            Err(ParamError::ThetaOutOfRange(_))
        ));
        assert!(FairParams::new(0, 0, 0)
            .unwrap_err()
            .to_string()
            .contains("alpha"));
    }

    #[test]
    fn budget_node_cap() {
        let mut c = Budget::nodes(3).start();
        assert!(c.tick());
        assert!(c.tick());
        assert!(c.tick());
        assert!(!c.tick());
        assert!(c.exhausted);
        assert!(!c.tick()); // stays exhausted
        assert_eq!(c.nodes, 4);
    }

    #[test]
    fn budget_unlimited() {
        let mut c = Budget::UNLIMITED.start();
        for _ in 0..10_000 {
            assert!(c.tick());
        }
        assert!(!c.exhausted);
    }

    #[test]
    fn budget_deadline_expires() {
        let mut c = Budget::time(Duration::from_millis(0)).start();
        // Deadline is checked every 1024 nodes.
        let mut ok = true;
        for _ in 0..2048 {
            ok = c.tick();
            if !ok {
                break;
            }
        }
        assert!(!ok);
    }

    #[test]
    fn budget_result_cap_is_exact() {
        let mut c = Budget::results(2).start();
        assert!(c.try_result());
        assert!(c.try_result());
        assert!(!c.try_result(), "third result must be refused");
        assert!(c.exhausted);
        assert!(!c.tick(), "exhaustion is sticky across limits");

        let mut z = Budget::results(0).start();
        assert!(!z.try_result(), "zero budget admits nothing");
    }

    #[test]
    fn unlimited_results_never_trip() {
        let mut c = Budget::UNLIMITED.start();
        for _ in 0..10_000 {
            assert!(c.try_result());
        }
        assert!(!c.exhausted);
    }

    #[test]
    fn shared_budget_counts_globally() {
        let shared = SharedBudget::new(Budget::nodes(5));
        let mut a = shared.clock(BudgetLane::Walk);
        let mut b = shared.clock(BudgetLane::Walk);
        let mut ok = 0;
        for _ in 0..4 {
            ok += usize::from(a.tick());
            ok += usize::from(b.tick());
        }
        assert_eq!(ok, 5, "exactly max_nodes ticks succeed across clocks");
        assert!(shared.is_exhausted());
        assert!(!shared.clock(BudgetLane::Walk).tick(), "new clocks see it");
        // The expand lane has its own countdown but shares the trip.
        assert!(!shared.clock(BudgetLane::Expand).tick());
    }

    #[test]
    fn shared_budget_lanes_are_independent() {
        let shared = SharedBudget::new(Budget::nodes(3));
        let mut w = shared.clock(BudgetLane::Walk);
        let mut e = shared.clock(BudgetLane::Expand);
        for _ in 0..3 {
            assert!(w.tick());
            assert!(e.tick());
        }
        assert!(!shared.is_exhausted(), "3 + 3 ticks fit in separate lanes");
    }

    #[test]
    fn shared_budget_results_are_exact_across_clocks() {
        let shared = SharedBudget::new(Budget::results(3));
        let mut a = shared.clock(BudgetLane::Expand);
        let mut b = shared.clock(BudgetLane::Expand);
        let mut emitted = 0;
        for _ in 0..10 {
            emitted += usize::from(a.try_result());
            emitted += usize::from(b.try_result());
        }
        assert_eq!(emitted, 3);
    }

    #[test]
    fn cancel_token_stops_standalone_and_shared_clocks() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let mut c = Budget::UNLIMITED.with_cancel(token.clone()).start();
        assert!(c.tick());
        token.cancel();
        assert!(token.is_cancelled());
        assert!(!c.tick(), "cancelled at the very next branch");
        assert_eq!(c.stop_reason(), Some(StopReason::Cancelled));

        let token = CancelToken::new();
        let shared = SharedBudget::new(Budget::UNLIMITED.with_cancel(token.clone()));
        let mut a = shared.clock(BudgetLane::Walk);
        let mut b = shared.clock(BudgetLane::Expand);
        assert!(a.tick() && b.tick());
        token.cancel();
        assert!(!a.tick());
        assert!(!b.tick());
        assert!(shared.is_exhausted(), "cancellation trips the whole run");
        assert_eq!(shared.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn stop_reasons_are_recorded() {
        let mut c = Budget::nodes(1).start();
        assert!(c.tick());
        assert!(!c.tick());
        assert_eq!(c.stop_reason(), Some(StopReason::NodeCap));

        let mut r = Budget::results(0).start();
        assert!(!r.try_result());
        assert_eq!(r.stop_reason(), Some(StopReason::ResultCap));

        let mut d = Budget::time(Duration::from_millis(0)).start();
        while d.tick() {}
        assert_eq!(d.stop_reason(), Some(StopReason::Deadline));

        // Shared: first reason wins, and every sibling clock sees it.
        let shared = SharedBudget::new(Budget::results(1));
        let mut a = shared.clock(BudgetLane::Expand);
        assert!(a.try_result());
        assert!(!a.try_result());
        assert_eq!(shared.stop_reason(), Some(StopReason::ResultCap));
        let mut b = shared.clock(BudgetLane::Walk);
        assert!(!b.tick());
        assert_eq!(b.stop_reason(), Some(StopReason::ResultCap));
    }

    #[test]
    fn stop_reason_display_and_codes() {
        for r in StopReason::CODES {
            assert_eq!(StopReason::from_code(r.code()), Some(r));
            assert!(!r.to_string().is_empty());
        }
        assert_eq!(StopReason::from_code(0), None);
        assert_eq!(StopReason::Deadline.to_string(), "deadline");
    }

    #[test]
    fn run_config_defaults() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.threads, 1);
        assert!(!cfg.sorted);
        assert_eq!(cfg.split_depth, 1);
        assert_eq!(cfg.substrate, Substrate::Auto);
        assert_eq!(RunConfig::with_threads(0).threads, 1);
        assert_eq!(RunConfig::with_threads(7).threads, 7);
    }

    #[test]
    fn display_formats() {
        assert_eq!(FairParams::unchecked(2, 3, 1).to_string(), "α=2 β=3 δ=1");
        let p = ProParams::new(2, 3, 1, 0.4).unwrap();
        assert!(p.to_string().contains("θ=0.4"));
    }
}
