//! The graph catalog: named graphs loaded once, queried many times.

use crate::protocol::GenSpec;
use crate::sync::{read_unpoisoned, write_unpoisoned};
use bigraph::mutate::MutateError;
use bigraph::{AttrValueId, BipartiteGraph, Side, VertexId};
use fair_biclique::incremental::{CoreTracker, UpdateEffect};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One resident graph plus its identity and summary statistics.
#[derive(Debug)]
pub struct GraphEntry {
    /// Catalog name.
    pub name: String,
    /// Monotonic load generation: re-`LOAD`ing a name bumps it, which
    /// changes every plan-cache key derived from the graph, so stale
    /// plans can never serve the new graph (they age out of the LRU).
    pub epoch: u64,
    /// Per-update sub-epoch within one load generation. `ADDEDGE` /
    /// `DELEDGE` / `ADDVERTEX` publish a **new** entry with the same
    /// `epoch` (so surviving plan-cache keys keep matching) and
    /// `version + 1`; readers holding the old `Arc` keep a consistent
    /// snapshot of the pre-update graph.
    pub version: u64,
    /// The graph itself (immutable once cataloged; updates swap in a
    /// new entry).
    pub graph: BipartiteGraph,
    /// Where it came from (`path` or generation spec), for `GRAPHS`.
    pub source: String,
    /// Incrementally maintained fair-core membership, one tracker per
    /// `(α, β)` that ever had a cached plan — repaired in place on
    /// every update so plan invalidation can be judged per pair.
    pub(crate) trackers: Vec<CoreTracker>,
}

impl GraphEntry {
    /// One-line summary for `GRAPHS`/`LOAD` replies.
    pub fn summary(&self) -> String {
        let g = &self.graph;
        format!(
            "{} upper={} lower={} edges={} source={} version={}",
            self.name,
            g.n_upper(),
            g.n_lower(),
            g.n_edges(),
            self.source,
            self.version
        )
    }
}

/// One single-edge/vertex mutation, as carried by the dynamic-graph
/// protocol verbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphUpdate {
    /// Insert edge `(u, v)`.
    AddEdge(VertexId, VertexId),
    /// Remove edge `(u, v)`.
    DelEdge(VertexId, VertexId),
    /// Append an isolated vertex carrying `attr` to `side`.
    AddVertex(Side, AttrValueId),
}

/// Why [`GraphCatalog::update`] refused.
#[derive(Debug, PartialEq, Eq)]
pub enum UpdateError {
    /// No graph by that name.
    NoSuchGraph(String),
    /// The CSR splice itself refused (bad endpoint, duplicate edge, …).
    Mutate(MutateError),
}

/// What one applied update did, for reply rendering and surgical plan
/// invalidation.
#[derive(Debug)]
pub struct UpdateOutcome {
    /// The freshly published entry (same epoch, `version + 1`).
    pub entry: Arc<GraphEntry>,
    /// Tracked `(α, β)` pairs whose fair core was touched — cached
    /// plans at these pairs are stale.
    pub stale_pairs: Vec<(u32, u32)>,
    /// Tracked pairs proven untouched — their plans stay resident.
    pub clean_pairs: Vec<(u32, u32)>,
    /// Id of the vertex appended by an `AddVertex` update.
    pub new_vertex: Option<VertexId>,
}

/// Thread-safe name → graph map.
#[derive(Debug, Default)]
pub struct GraphCatalog {
    graphs: RwLock<BTreeMap<String, Arc<GraphEntry>>>,
    epoch: AtomicU64,
}

impl GraphCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) `name`, returning the new entry.
    pub fn insert(&self, name: &str, graph: BipartiteGraph, source: String) -> Arc<GraphEntry> {
        let entry = Arc::new(GraphEntry {
            name: name.to_string(),
            // The epoch only needs to be unique per insert — the map's
            // write lock below is what publishes the entry to others.
            // lint: ordering: uniqueness, not synchronization
            epoch: self.epoch.fetch_add(1, Ordering::Relaxed),
            version: 0,
            graph,
            source,
            trackers: Vec::new(),
        });
        write_unpoisoned(&self.graphs).insert(name.to_string(), Arc::clone(&entry));
        entry
    }

    /// Apply one mutation to `name`, publishing a new entry with the
    /// same epoch and a bumped version.
    ///
    /// `tracked` lists the `(α, β)` pairs that currently have cached
    /// plans; trackers for them (and any pair tracked by an earlier
    /// update) are repaired incrementally and classified stale/clean,
    /// so the caller can invalidate exactly the stale plans. Missing
    /// trackers are initialized on the **pre-update** graph — the state
    /// the cached plans were prepared against.
    ///
    /// The catalog write lock is held across the splice and repair so
    /// concurrent updates to one graph serialize; readers holding the
    /// old `Arc<GraphEntry>` are unaffected.
    pub fn update(
        &self,
        name: &str,
        update: GraphUpdate,
        tracked: &[(u32, u32)],
    ) -> Result<UpdateOutcome, UpdateError> {
        let mut map = write_unpoisoned(&self.graphs);
        let Some(old) = map.get(name) else {
            return Err(UpdateError::NoSuchGraph(name.to_string()));
        };
        let mut trackers = old.trackers.clone();
        for &(alpha, beta) in tracked {
            if !trackers.iter().any(|t| t.params() == (alpha, beta)) {
                trackers.push(CoreTracker::new(&old.graph, alpha, beta));
            }
        }
        // Resolve the update to the mutated graph before repairing.
        enum Applied {
            Edge { add: bool, u: VertexId, v: VertexId },
            Vertex { side: Side, id: VertexId },
        }
        let (graph, applied) = match update {
            GraphUpdate::AddEdge(u, v) => (
                old.graph.with_edge(u, v).map_err(UpdateError::Mutate)?,
                Applied::Edge { add: true, u, v },
            ),
            GraphUpdate::DelEdge(u, v) => (
                old.graph.without_edge(u, v).map_err(UpdateError::Mutate)?,
                Applied::Edge { add: false, u, v },
            ),
            GraphUpdate::AddVertex(side, attr) => {
                let (g, id) = old
                    .graph
                    .with_vertex(side, attr)
                    .map_err(UpdateError::Mutate)?;
                (g, Applied::Vertex { side, id })
            }
        };
        let (mut stale_pairs, mut clean_pairs) = (Vec::new(), Vec::new());
        for t in &mut trackers {
            let effect: UpdateEffect = match applied {
                Applied::Edge { add: true, u, v } => t.add_edge(&graph, u, v),
                Applied::Edge { add: false, u, v } => t.remove_edge(&graph, u, v),
                Applied::Vertex { side, id } => t.add_vertex(&graph, side, id),
            };
            if effect.is_clean() {
                clean_pairs.push(t.params());
            } else {
                stale_pairs.push(t.params());
            }
        }
        let entry = Arc::new(GraphEntry {
            name: old.name.clone(),
            // Same epoch on purpose: plans proven clean must keep
            // hitting under their existing keys.
            epoch: old.epoch,
            version: old.version + 1,
            graph,
            source: old.source.clone(),
            trackers,
        });
        map.insert(name.to_string(), Arc::clone(&entry));
        let new_vertex = match applied {
            Applied::Vertex { id, .. } => Some(id),
            Applied::Edge { .. } => None,
        };
        Ok(UpdateOutcome {
            entry,
            stale_pairs,
            clean_pairs,
            new_vertex,
        })
    }

    /// Look up `name`.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        read_unpoisoned(&self.graphs).get(name).cloned()
    }

    /// Remove `name`; true when it existed.
    pub fn remove(&self, name: &str) -> bool {
        write_unpoisoned(&self.graphs).remove(name).is_some()
    }

    /// Number of cataloged graphs.
    pub fn len(&self) -> usize {
        read_unpoisoned(&self.graphs).len()
    }

    /// True when no graph is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Summaries in name order.
    pub fn summaries(&self) -> Vec<String> {
        read_unpoisoned(&self.graphs)
            .values()
            .map(|e| e.summary())
            .collect()
    }
}

/// Build a graph from a `GEN` spec.
pub fn generate(spec: GenSpec) -> (BipartiteGraph, String) {
    match spec {
        GenSpec::Dataset(d) => {
            let s = fbe_datasets::corpus::spec(d);
            (s.build(), format!("gen:{d}"))
        }
        GenSpec::Uniform {
            n_upper,
            n_lower,
            m,
            seed,
            attrs,
        } => (
            bigraph::generate::random_uniform(n_upper, n_lower, m, attrs.0, attrs.1, seed),
            format!("gen:uniform:{n_upper},{n_lower},{m},{seed}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::generate::random_uniform;

    #[test]
    fn insert_get_remove_and_epochs() {
        let c = GraphCatalog::new();
        assert!(c.is_empty());
        let g1 = c.insert("a", random_uniform(4, 4, 8, 1, 1, 0), "test".into());
        let g2 = c.insert("b", random_uniform(5, 5, 10, 1, 1, 0), "test".into());
        assert_ne!(g1.epoch, g2.epoch);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a").unwrap().graph.n_upper(), 4);
        assert!(c.get("zzz").is_none());

        // Replacing bumps the epoch — stale plan keys stop matching.
        let g1b = c.insert("a", random_uniform(6, 6, 12, 1, 1, 0), "test".into());
        assert!(g1b.epoch > g1.epoch);
        assert_eq!(c.len(), 2);

        assert!(c.remove("a"));
        assert!(!c.remove("a"));
        assert_eq!(c.len(), 1);
        let s = c.summaries();
        assert_eq!(s.len(), 1);
        assert!(s[0].starts_with("b upper=5"));
    }

    #[test]
    fn update_publishes_new_version_same_epoch() {
        let c = GraphCatalog::new();
        let e0 = c.insert("g", random_uniform(8, 8, 20, 2, 2, 1), "test".into());
        let old_edges = e0.graph.n_edges();
        // Find a non-edge.
        let (u, v) = (0..8u32)
            .flat_map(|u| (0..8u32).map(move |v| (u, v)))
            .find(|&(u, v)| !e0.graph.has_edge(u, v))
            .expect("graph is not complete");
        let out = c
            .update("g", GraphUpdate::AddEdge(u, v), &[(1, 1)])
            .expect("update applies");
        assert_eq!(out.entry.epoch, e0.epoch, "epoch survives updates");
        assert_eq!(out.entry.version, 1);
        assert_eq!(out.entry.graph.n_edges(), old_edges + 1);
        assert_eq!(out.stale_pairs.len() + out.clean_pairs.len(), 1);
        // The old entry is untouched for readers that still hold it.
        assert_eq!(e0.graph.n_edges(), old_edges);
        assert_eq!(e0.version, 0);
        // The tracker persists into the next update without re-listing.
        let out2 = c
            .update("g", GraphUpdate::DelEdge(u, v), &[])
            .expect("delete applies");
        assert_eq!(out2.entry.version, 2);
        assert_eq!(out2.stale_pairs.len() + out2.clean_pairs.len(), 1);
        assert_eq!(out2.entry.graph.n_edges(), old_edges);
        // Vertex append reports the new id.
        let out3 = c
            .update("g", GraphUpdate::AddVertex(bigraph::Side::Lower, 1), &[])
            .expect("vertex applies");
        assert_eq!(out3.new_vertex, Some(8));
        assert!(out3.entry.summary().contains("version=3"));
        // Errors pass through.
        assert_eq!(
            c.update("nope", GraphUpdate::AddEdge(0, 0), &[])
                .unwrap_err(),
            UpdateError::NoSuchGraph("nope".into())
        );
        assert!(matches!(
            c.update("g", GraphUpdate::DelEdge(u, v), &[]).unwrap_err(),
            UpdateError::Mutate(MutateError::EdgeMissing(_, _))
        ));
    }

    #[test]
    fn update_classifies_stale_and_clean_pairs() {
        let c = GraphCatalog::new();
        // Single attribute per side: at (1,1) every non-isolated
        // vertex is in the core, so any existing edge is a core edge.
        c.insert("g", random_uniform(10, 10, 40, 1, 1, 3), "test".into());
        let e = c.get("g").expect("inserted");
        let (u, v) = e.graph.edges().next().expect("has edges");
        // (50,50) core is empty, so the same deletion is clean there.
        let out = c
            .update("g", GraphUpdate::DelEdge(u, v), &[(1, 1), (50, 50)])
            .expect("delete applies");
        assert!(out.stale_pairs.contains(&(1, 1)), "{out:?}");
        assert!(out.clean_pairs.contains(&(50, 50)), "{out:?}");
    }

    #[test]
    fn generate_builds_both_kinds() {
        let (g, src) = generate(GenSpec::Uniform {
            n_upper: 10,
            n_lower: 12,
            m: 30,
            seed: 3,
            attrs: (2, 2),
        });
        assert_eq!(g.n_upper(), 10);
        assert_eq!(g.n_edges(), 30);
        assert!(src.contains("uniform"));
        let (g, src) = generate(GenSpec::Dataset(fbe_datasets::corpus::Dataset::Youtube));
        assert!(g.n_edges() > 0);
        assert!(src.contains("Youtube"));
    }
}
