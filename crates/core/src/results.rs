//! Result persistence and analysis: serialize enumeration output,
//! compare result sets across runs/algorithms, and audit invariants.
//!
//! Enumeration runs produce up to millions of bicliques; downstream
//! work (the paper's case studies, regression testing between
//! algorithm versions, cross-machine comparisons) needs them on disk
//! and diffable:
//!
//! * [`write_tsv`] / [`read_tsv`] — one biclique per line,
//!   `u1,u2,… \t v1,v2,…`;
//! * [`diff`] — symmetric difference of two result sets;
//! * [`summarize`] — size/balance statistics of a result set;
//! * [`count_contained_pairs`] — audits the maximality invariant: in a
//!   correct run of any *maximal* model, no result's vertex set
//!   contains another's.

use crate::biclique::Biclique;
use bigraph::{AttrValueId, BipartiteGraph, Side, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};

/// Write bicliques as TSV: `u1,u2,…<TAB>v1,v2,…` per line.
pub fn write_tsv<W: Write>(bicliques: &[Biclique], mut w: W) -> std::io::Result<()> {
    for bc in bicliques {
        let us: Vec<String> = bc.upper.iter().map(|u| u.to_string()).collect();
        let vs: Vec<String> = bc.lower.iter().map(|v| v.to_string()).collect();
        writeln!(w, "{}\t{}", us.join(","), vs.join(","))?;
    }
    Ok(())
}

/// Read bicliques written by [`write_tsv`] (blank lines and `#`
/// comments are skipped; sides are re-sorted defensively).
pub fn read_tsv<R: Read>(r: R) -> Result<Vec<Biclique>, String> {
    let mut out = Vec::new();
    for (i, line) in BufReader::new(r).lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", i + 1))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let upper = parse_side(parts.next(), i + 1)?;
        let lower = parse_side(parts.next(), i + 1)?;
        out.push(Biclique::new(upper, lower));
    }
    Ok(out)
}

fn parse_side(tok: Option<&str>, line: usize) -> Result<Vec<VertexId>, String> {
    let tok = tok.ok_or(format!("line {line}: expected two tab-separated sides"))?;
    if tok.is_empty() {
        return Ok(Vec::new());
    }
    tok.split(',')
        .map(|s| {
            s.trim()
                .parse::<VertexId>()
                .map_err(|e| format!("line {line}: {e}"))
        })
        .collect()
}

/// Sort a result set into the canonical deterministic order
/// (lexicographic on `(upper, lower)`).
///
/// This is the ordering [`crate::config::RunConfig::sorted`] applies:
/// because parallel and serial runs produce identical result *sets*,
/// canonically ordered output is byte-identical across thread counts.
pub fn canonical_order(bicliques: &mut [Biclique]) {
    bicliques.sort_unstable();
}

/// Symmetric difference of two result sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiffReport {
    /// Results present only in the first set.
    pub only_a: Vec<Biclique>,
    /// Results present only in the second set.
    pub only_b: Vec<Biclique>,
    /// Number of results in both.
    pub common: usize,
}

impl DiffReport {
    /// True when both sets are identical.
    pub fn is_empty(&self) -> bool {
        self.only_a.is_empty() && self.only_b.is_empty()
    }
}

/// Compare two result sets (order-insensitive, duplicate-insensitive).
pub fn diff(a: &[Biclique], b: &[Biclique]) -> DiffReport {
    let sa: BTreeSet<&Biclique> = a.iter().collect();
    let sb: BTreeSet<&Biclique> = b.iter().collect();
    DiffReport {
        only_a: sa.difference(&sb).map(|&x| x.clone()).collect(),
        only_b: sb.difference(&sa).map(|&x| x.clone()).collect(),
        common: sa.intersection(&sb).count(),
    }
}

/// Statistics of a result set (the kind of numbers the paper's case
/// studies report about their findings).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultSummary {
    /// Number of bicliques.
    pub count: usize,
    /// Smallest/largest total vertex count.
    pub min_size: usize,
    /// Largest total vertex count.
    pub max_size: usize,
    /// Mean `|L|`.
    pub mean_upper: f64,
    /// Mean `|R|`.
    pub mean_lower: f64,
    /// Mean absolute difference between lower-side attribute counts
    /// and their per-biclique mean (0 = perfectly balanced everywhere).
    pub mean_lower_imbalance: f64,
    /// Histogram of total sizes: `(size, count)` sorted by size.
    pub size_histogram: Vec<(usize, usize)>,
}

/// Summarize a result set against its graph (for attribute balance).
pub fn summarize(g: &BipartiteGraph, bicliques: &[Biclique]) -> ResultSummary {
    let n_attrs = (g.n_attr_values(Side::Lower) as usize).max(1);
    let mut min_size = usize::MAX;
    let mut max_size = 0usize;
    let mut sum_u = 0usize;
    let mut sum_l = 0usize;
    let mut imbalance = 0.0f64;
    let mut hist = std::collections::BTreeMap::<usize, usize>::new();
    for bc in bicliques {
        let size = bc.len();
        min_size = min_size.min(size);
        max_size = max_size.max(size);
        sum_u += bc.upper.len();
        sum_l += bc.lower.len();
        *hist.entry(size).or_insert(0) += 1;
        let mut counts = vec![0f64; n_attrs];
        for &v in &bc.lower {
            counts[g.attr(Side::Lower, v) as usize] += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / n_attrs as f64;
        imbalance += counts.iter().map(|c| (c - mean).abs()).sum::<f64>() / n_attrs as f64;
    }
    let n = bicliques.len();
    ResultSummary {
        count: n,
        min_size: if n == 0 { 0 } else { min_size },
        max_size,
        mean_upper: if n == 0 { 0.0 } else { sum_u as f64 / n as f64 },
        mean_lower: if n == 0 { 0.0 } else { sum_l as f64 / n as f64 },
        mean_lower_imbalance: if n == 0 { 0.0 } else { imbalance / n as f64 },
        size_histogram: hist.into_iter().collect(),
    }
}

/// Count ordered pairs `(i, j)` where biclique `i`'s vertex sets are
/// strict subsets of `j`'s on both sides.
///
/// For the plain *maximal biclique* model this must be zero. Fair
/// biclique results may legitimately contain nested pairs (a fair
/// subset of a larger fair biclique's side can be maximal in its own
/// right only if the larger one is not fair — so nesting across
/// *different* parameter runs is normal, within one run it indicates a
/// maximality bug). `O(n²·size)`; intended for audits, not hot paths.
pub fn count_contained_pairs(bicliques: &[Biclique]) -> usize {
    let mut n = 0usize;
    for (i, a) in bicliques.iter().enumerate() {
        for (j, b) in bicliques.iter().enumerate() {
            if i == j {
                continue;
            }
            if a.len() < b.len()
                && bigraph::is_sorted_subset(&a.upper, &b.upper)
                && bigraph::is_sorted_subset(&a.lower, &b.lower)
            {
                n += 1;
            }
        }
    }
    n
}

/// Group bicliques by their lower-side attribute signature
/// `(count_0, count_1, …)` — the case studies report "how many results
/// have k seniors and m juniors".
pub fn group_by_lower_signature(
    g: &BipartiteGraph,
    bicliques: &[Biclique],
) -> Vec<(Vec<u32>, usize)> {
    let n_attrs = (g.n_attr_values(Side::Lower) as usize).max(1);
    let mut map = std::collections::BTreeMap::<Vec<u32>, usize>::new();
    for bc in bicliques {
        let mut counts = vec![0u32; n_attrs];
        for &v in &bc.lower {
            counts[g.attr(Side::Lower, v) as usize] += 1;
        }
        *map.entry(counts).or_insert(0) += 1;
    }
    map.into_iter().collect()
}

#[allow(unused)]
fn _attr_type(_: AttrValueId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FairParams, RunConfig};
    use crate::pipeline::enumerate_ssfbc;
    use bigraph::generate::random_uniform;

    fn sample() -> Vec<Biclique> {
        vec![
            Biclique::new(vec![0, 1], vec![2, 3]),
            Biclique::new(vec![5], vec![0, 1, 2]),
        ]
    }

    #[test]
    fn tsv_roundtrip() {
        let bcs = sample();
        let mut buf = Vec::new();
        write_tsv(&bcs, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("0,1\t2,3"));
        let back = read_tsv(buf.as_slice()).unwrap();
        assert_eq!(back, bcs);
    }

    #[test]
    fn tsv_skips_comments_and_sorts() {
        let data = "# header\n\n3,1\t9,2\n";
        let back = read_tsv(data.as_bytes()).unwrap();
        assert_eq!(back, vec![Biclique::new(vec![1, 3], vec![2, 9])]);
        assert!(read_tsv("bogus\n".as_bytes()).is_err());
        assert!(read_tsv("1,2\n".as_bytes()).is_err()); // missing tab
    }

    #[test]
    fn diff_reports_symmetric_difference() {
        let a = sample();
        let mut b = sample();
        b.pop();
        b.push(Biclique::new(vec![9], vec![9]));
        let d = diff(&a, &b);
        assert_eq!(d.common, 1);
        assert_eq!(d.only_a, vec![Biclique::new(vec![5], vec![0, 1, 2])]);
        assert_eq!(d.only_b, vec![Biclique::new(vec![9], vec![9])]);
        assert!(!d.is_empty());
        assert!(diff(&a, &a).is_empty());
    }

    fn balanced_block_graph() -> bigraph::BipartiteGraph {
        // Deterministic: a balanced 4x6 block over random background.
        let base = random_uniform(20, 20, 80, 2, 2, 3);
        let mut b = bigraph::GraphBuilder::new(2, 2);
        for (u, v) in base.edges() {
            b.add_edge(u, v);
        }
        let mut ua = base.attrs(Side::Upper).to_vec();
        let mut la = base.attrs(Side::Lower).to_vec();
        for u in 0..4u32 {
            for v in 0..6u32 {
                b.add_edge(u, v);
            }
        }
        for (i, a) in la.iter_mut().take(6).enumerate() {
            *a = (i % 2) as u16;
        }
        for (i, a) in ua.iter_mut().take(4).enumerate() {
            *a = (i % 2) as u16;
        }
        b.set_attrs_upper(&ua);
        b.set_attrs_lower(&la);
        b.build().unwrap()
    }

    #[test]
    fn summary_statistics() {
        let g = balanced_block_graph();
        let report = enumerate_ssfbc(&g, FairParams::unchecked(2, 2, 1), &RunConfig::default());
        let s = summarize(&g, &report.bicliques);
        assert_eq!(s.count, report.bicliques.len());
        assert!(s.count > 0);
        assert!(s.min_size <= s.max_size);
        assert!(s.mean_upper >= 2.0, "alpha floor");
        // Fairness bound: per-biclique imbalance can be at most delta/2
        // away from the mean for two attributes.
        assert!(s.mean_lower_imbalance <= 0.5 + 1e-9);
        let total: usize = s.size_histogram.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, s.count);
    }

    #[test]
    fn summary_of_empty() {
        let g = random_uniform(4, 4, 4, 2, 2, 1);
        let s = summarize(&g, &[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_size, 0);
        assert!(s.size_histogram.is_empty());
    }

    #[test]
    fn containment_audit() {
        let nested = vec![
            Biclique::new(vec![0, 1], vec![0, 1, 2]),
            Biclique::new(vec![0], vec![0, 1]),
        ];
        assert_eq!(count_contained_pairs(&nested), 1);
        assert_eq!(count_contained_pairs(&sample()), 0);
    }

    #[test]
    fn maximal_biclique_results_have_no_containment() {
        use crate::biclique::CollectSink;
        use crate::config::{Budget, VertexOrder};
        let g = random_uniform(12, 12, 60, 1, 1, 9);
        let mut sink = CollectSink::default();
        crate::mbea::maximal_bicliques(
            &g,
            1,
            1,
            VertexOrder::DegreeDesc,
            Budget::UNLIMITED,
            &mut sink,
        );
        assert!(sink.bicliques.len() > 3);
        assert_eq!(count_contained_pairs(&sink.bicliques), 0);
    }

    #[test]
    fn signature_grouping() {
        let g = balanced_block_graph();
        let report = enumerate_ssfbc(&g, FairParams::unchecked(2, 2, 1), &RunConfig::default());
        let groups = group_by_lower_signature(&g, &report.bicliques);
        let total: usize = groups.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, report.bicliques.len());
        for (sig, _) in &groups {
            // Every signature respects the fairness constraints.
            assert!(crate::fairset::is_fair(sig, 2, 1), "{sig:?}");
        }
    }
}
