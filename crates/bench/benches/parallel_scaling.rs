//! Work-stealing engine scaling: every miner at 1/2/4/8 threads.
//! Run: `cargo bench --bench parallel_scaling` (add `-- --quick` for
//! the reduced sweep).

fn main() {
    let opts = fbe_bench::Opts::from_args();
    println!(
        "=== Parallel scaling (engine extension) (budget {:?}/run, quick={}) ===",
        opts.budget, opts.quick
    );
    for (i, t) in fbe_bench::experiments::exp8_parallel_scaling(&opts)
        .into_iter()
        .enumerate()
    {
        t.print();
        t.save(&format!("parallel_scaling_{i}"));
        t.export_json("parallel_scaling");
    }
}
