//! Proportion fair biclique enumeration: `FairBCEMPro++` (§III-D) and
//! `BFairBCEMPro++` (§IV-C).
//!
//! Structure mirrors [`crate::fairbcem_pp`] / [`crate::bfairbcem`]
//! with the proportion-aware feasibility and maximality tests:
//!
//! * the fair-set inspection becomes [`crate::fairset::is_fair_pro`];
//! * `Combination` becomes the exact `CombinationPro`
//!   ([`crate::fairset::for_each_max_pro_fair_subset`]), which searches
//!   the maximal feasible size lattice instead of the paper's closed
//!   form (exact for any attribute-domain size; equal to the closed
//!   form on the paper's two-value domains — property-tested).

use crate::biclique::{BicliqueSink, EnumStats};
use crate::config::{
    Budget, BudgetClock, BudgetLane, ProParams, SharedBudget, Substrate, VertexOrder,
};
use crate::fairset::{
    for_each_max_pro_fair_subset, is_fair_pro, is_maximal_fair_subset_pro, AttrCounts,
};
use crate::mbea::{root_task, RBound, Walker};
use bigraph::candidate::{AdjOps, CandidateOps, CandidatePlan};
use bigraph::{BipartiteGraph, Side, VertexId};

/// Shorthand for the shared-budget handle the chained drivers pass
/// around.
type SharedArc = std::sync::Arc<SharedBudget>;

/// Run `FairBCEMPro++` on `g` (assumed already pruned; fair side =
/// lower): enumerate all proportion single-side fair bicliques.
pub fn fairbcem_pro_pp_on_pruned(
    g: &BipartiteGraph,
    pro: ProParams,
    order: VertexOrder,
    budget: Budget,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    fairbcem_pro_pp_on_pruned_with(g, pro, order, budget, Substrate::Auto, sink)
}

/// [`fairbcem_pro_pp_on_pruned`] with an explicit candidate substrate.
pub fn fairbcem_pro_pp_on_pruned_with(
    g: &BipartiteGraph,
    pro: ProParams,
    order: VertexOrder,
    budget: Budget,
    substrate: Substrate,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    let plan = CandidatePlan::build(g, substrate, false);
    fairbcem_pro_pp_shared(
        g,
        pro,
        order,
        &SharedBudget::new(budget),
        false,
        &plan,
        sink,
    )
}

/// `FairBCEMPro++` with all clocks drawn from one shared budget, so
/// any exhausted limit — including the result cap — stops the whole
/// walk. `intermediate` exempts emissions from the result budget
/// (the PBSFBC chain).
pub(crate) fn fairbcem_pro_pp_shared(
    g: &BipartiteGraph,
    pro: ProParams,
    order: VertexOrder,
    shared: &SharedArc,
    intermediate: bool,
    plan: &CandidatePlan,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    let params = pro.base;
    let expand_clock = if intermediate {
        shared.clock(BudgetLane::Expand).exempt_results()
    } else {
        shared.clock(BudgetLane::Expand)
    };
    let mut expander = ProSsExpander::with_clock(g, pro, plan.ops(g, Side::Lower), expand_clock);
    let mut walker = Walker::new(
        g,
        params.alpha as usize,
        RBound::AttrBeta {
            attrs: g.attrs(Side::Lower),
            beta: params.beta,
        },
        plan.ops(g, Side::Lower),
        shared.clock(BudgetLane::Walk),
    );
    walker.run(root_task(g, order, plan.choice()), &mut |l, r| {
        expander.expand(l, r, sink)
    });
    let mut stats = walker.stats();
    stats.emitted = expander.emitted;
    stats.aborted |= expander.aborted();
    stats.stop = stats.stop.or_else(|| expander.stop_reason());
    stats
}

/// The proportion analog of [`crate::fairbcem_pp::SsExpander`]: given
/// a maximal biclique `(L, R)`, emit the PSSFBCs it contains via the
/// exact `CombinationPro`.
pub(crate) struct ProSsExpander<'a> {
    pro: ProParams,
    attrs: &'a [bigraph::AttrValueId],
    groups: Vec<Vec<VertexId>>,
    /// Attribute-count scratch, recounted per expansion (no per-call
    /// allocation on the hot path).
    counts: AttrCounts,
    /// Lower-side candidate ops (closure checks intersect the fair
    /// side's adjacency).
    ops: AdjOps<'a>,
    /// Budget over expansion steps: a single `CombinationPro` can be
    /// binomially large.
    clock: BudgetClock,
    /// PSSFBCs emitted so far.
    pub(crate) emitted: u64,
}

impl<'a> ProSsExpander<'a> {
    /// Constructor taking explicit candidate ops and clock — the
    /// parallel engine hands every worker its own handles drawing from
    /// the shared rows and countdown.
    pub(crate) fn with_clock(
        g: &'a BipartiteGraph,
        pro: ProParams,
        ops: AdjOps<'a>,
        clock: BudgetClock,
    ) -> Self {
        let n_attrs = (g.n_attr_values(Side::Lower) as usize).max(1);
        ProSsExpander {
            pro,
            attrs: g.attrs(Side::Lower),
            groups: vec![Vec::new(); n_attrs],
            counts: AttrCounts::zeros(n_attrs),
            ops,
            clock,
            emitted: 0,
        }
    }

    /// True when the expansion budget expired mid-run (results are a
    /// correct subset).
    pub(crate) fn aborted(&self) -> bool {
        self.clock.exhausted
    }

    /// Why the expansion stage stopped (None while unexhausted).
    pub(crate) fn stop_reason(&self) -> Option<crate::config::StopReason> {
        self.clock.stop_reason()
    }

    pub(crate) fn expand(&mut self, l: &[VertexId], r: &[VertexId], sink: &mut dyn BicliqueSink) {
        if self.clock.exhausted {
            return;
        }
        let params = self.pro.base;
        self.counts.recount(r, self.attrs);
        if is_fair_pro(
            self.counts.as_slice(),
            params.beta,
            params.delta,
            self.pro.theta,
        ) {
            if self.clock.try_result() {
                sink.emit(l, r);
                self.emitted += 1;
            }
            self.clock.tick();
            return;
        }
        for g_attr in self.groups.iter_mut() {
            g_attr.clear();
        }
        for &v in r {
            self.groups[self.attrs[v as usize] as usize].push(v);
        }
        let ops = &mut self.ops;
        let emitted = &mut self.emitted;
        let clock = &mut self.clock;
        for_each_max_pro_fair_subset(
            &self.groups,
            params.beta,
            params.delta,
            self.pro.theta,
            &mut |r_sub| {
                // Empty fair sides are degenerate non-results.
                if !r_sub.is_empty() && ops.closure_matches(r_sub, l.len()) && clock.try_result() {
                    sink.emit(l, r_sub);
                    *emitted += 1;
                }
                clock.tick()
            },
        );
    }
}

/// Run `BFairBCEMPro++` on `g`: enumerate all proportion bi-side fair
/// bicliques by expanding each PSSFBC's upper side with the exact
/// `CombinationPro` and the proportion `MFSCheck`.
pub fn bfairbcem_pro_pp_on_pruned(
    g: &BipartiteGraph,
    pro: ProParams,
    order: VertexOrder,
    budget: Budget,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    bfairbcem_pro_pp_on_pruned_with(g, pro, order, budget, Substrate::Auto, sink)
}

/// [`bfairbcem_pro_pp_on_pruned`] with an explicit candidate
/// substrate shared by every stage of the chain.
pub fn bfairbcem_pro_pp_on_pruned_with(
    g: &BipartiteGraph,
    pro: ProParams,
    order: VertexOrder,
    budget: Budget,
    substrate: Substrate,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    // One shared budget: the PSSFBC stage is intermediate (exempt
    // from the result cap — only PBSFBCs are final results), and any
    // tripped limit stops the whole chain.
    let plan = CandidatePlan::build(g, substrate, true);
    bfairbcem_pro_pp_planned(g, pro, order, &SharedBudget::new(budget), &plan, sink)
}

/// `BFairBCEMPro++` on a pre-resolved [`CandidatePlan`] (built with
/// upper rows) and an externally owned shared budget — the entry point
/// the prepared-plan cache ([`crate::prepared`]) reuses across queries.
pub(crate) fn bfairbcem_pro_pp_planned(
    g: &BipartiteGraph,
    pro: ProParams,
    order: VertexOrder,
    shared: &SharedArc,
    plan: &CandidatePlan,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    let mut expander = ProBiSideExpander::with_clock(
        g,
        pro,
        plan.ops(g, Side::Upper),
        shared.clock(BudgetLane::Expand),
    );
    let mut chain = ProBiChainSink {
        exp: &mut expander,
        sink,
    };
    let mut stats = fairbcem_pro_pp_shared(g, pro, order, shared, true, plan, &mut chain);
    stats.emitted = expander.emitted;
    stats.aborted |= expander.aborted();
    stats.stop = stats.stop.or_else(|| expander.stop_reason());
    stats
}

/// The upper-side expansion step from PSSFBCs to the PBSFBCs
/// contained in them.
pub(crate) struct ProBiSideExpander<'a> {
    g: &'a BipartiteGraph,
    pro: ProParams,
    /// Upper-side candidate ops (`N(l')` intersects upper adjacency).
    ops: AdjOps<'a>,
    clock: BudgetClock,
    pub(crate) emitted: u64,
    groups: Vec<Vec<VertexId>>,
    /// Long-lived scratch for the per-subset MFSCheck: `N(l')`, the
    /// lower counts of `R'`, and the candidate counts of `N(l') − R'`.
    nl: Vec<VertexId>,
    base: AttrCounts,
    cand: AttrCounts,
}

impl<'a> ProBiSideExpander<'a> {
    /// Constructor taking explicit upper-side candidate ops and a
    /// clock — the parallel engine hands every worker its own handles
    /// drawing from the shared rows and countdown.
    pub(crate) fn with_clock(
        g: &'a BipartiteGraph,
        pro: ProParams,
        ops: AdjOps<'a>,
        clock: BudgetClock,
    ) -> Self {
        let n_attrs_u = (g.n_attr_values(Side::Upper) as usize).max(1);
        let n_attrs_l = (g.n_attr_values(Side::Lower) as usize).max(1);
        ProBiSideExpander {
            g,
            pro,
            ops,
            clock,
            emitted: 0,
            groups: vec![Vec::new(); n_attrs_u],
            nl: Vec::new(),
            base: AttrCounts::zeros(n_attrs_l),
            cand: AttrCounts::zeros(n_attrs_l),
        }
    }

    /// True when the expansion budget expired (results are a subset).
    pub(crate) fn aborted(&self) -> bool {
        self.clock.exhausted
    }

    /// Why the expansion stage stopped (None while unexhausted).
    pub(crate) fn stop_reason(&self) -> Option<crate::config::StopReason> {
        self.clock.stop_reason()
    }

    pub(crate) fn expand(&mut self, l: &[VertexId], r: &[VertexId], sink: &mut dyn BicliqueSink) {
        if self.clock.exhausted {
            return;
        }
        let attrs_u = self.g.attrs(Side::Upper);
        let attrs_l = self.g.attrs(Side::Lower);
        for g_attr in self.groups.iter_mut() {
            g_attr.clear();
        }
        for &u in l {
            self.groups[attrs_u[u as usize] as usize].push(u);
        }
        self.base.recount(r, attrs_l);
        let pro = self.pro;
        let ops = &mut self.ops;
        let emitted = &mut self.emitted;
        let clock = &mut self.clock;
        let nl = &mut self.nl;
        let base = &self.base;
        let cand = &mut self.cand;
        for_each_max_pro_fair_subset(
            &self.groups,
            pro.base.alpha,
            pro.base.delta,
            pro.theta,
            &mut |l_sub| {
                ops.common_neighbors_into(l_sub, nl);
                cand.clear();
                let mut i = 0usize;
                for &v in nl.iter() {
                    while i < r.len() && r[i] < v {
                        i += 1;
                    }
                    if i < r.len() && r[i] == v {
                        continue;
                    }
                    cand.inc(attrs_l[v as usize]);
                }
                if is_maximal_fair_subset_pro(
                    base.as_slice(),
                    cand.as_slice(),
                    pro.base.beta,
                    pro.base.delta,
                    pro.theta,
                ) && clock.try_result()
                {
                    sink.emit(l_sub, r);
                    *emitted += 1;
                }
                clock.tick()
            },
        );
    }
}

/// [`BicliqueSink`] adapter chaining a PSSFBC enumerator into
/// [`ProBiSideExpander::expand`] with a downstream sink.
pub(crate) struct ProBiChainSink<'x, 'g> {
    pub(crate) exp: &'x mut ProBiSideExpander<'g>,
    pub(crate) sink: &'x mut dyn BicliqueSink,
}

impl BicliqueSink for ProBiChainSink<'_, '_> {
    fn emit(&mut self, l: &[VertexId], r: &[VertexId]) {
        self.exp.expand(l, r, self.sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biclique::{Biclique, CollectSink};
    use crate::verify::{oracle_pbsfbc, oracle_pssfbc};
    use bigraph::generate::random_uniform;
    use std::collections::BTreeSet;

    fn run_ss(g: &BipartiteGraph, pro: ProParams) -> BTreeSet<Biclique> {
        let mut sink = CollectSink::default();
        let stats = fairbcem_pro_pp_on_pruned(
            g,
            pro,
            VertexOrder::DegreeDesc,
            Budget::UNLIMITED,
            &mut sink,
        );
        assert!(!stats.aborted);
        let set: BTreeSet<Biclique> = sink.bicliques.iter().cloned().collect();
        assert_eq!(set.len(), sink.bicliques.len(), "no duplicates");
        set
    }

    fn run_bi(g: &BipartiteGraph, pro: ProParams) -> BTreeSet<Biclique> {
        let mut sink = CollectSink::default();
        let stats = bfairbcem_pro_pp_on_pruned(
            g,
            pro,
            VertexOrder::DegreeDesc,
            Budget::UNLIMITED,
            &mut sink,
        );
        assert!(!stats.aborted);
        let set: BTreeSet<Biclique> = sink.bicliques.iter().cloned().collect();
        assert_eq!(set.len(), sink.bicliques.len(), "no duplicates");
        set
    }

    #[test]
    fn pssfbc_matches_oracle() {
        for seed in 0..20u64 {
            let g = random_uniform(8, 10, 34, 2, 2, seed);
            for theta in [0.0, 0.3, 0.4, 0.5] {
                for (a, b, d) in [(1, 1, 1), (2, 1, 2), (2, 2, 1)] {
                    let pro = ProParams::new(a, b, d, theta).unwrap();
                    let want = oracle_pssfbc(&g, pro);
                    let got = run_ss(&g, pro);
                    assert_eq!(got, want, "seed {seed} {pro}");
                }
            }
        }
    }

    #[test]
    fn pbsfbc_matches_oracle() {
        for seed in 0..15u64 {
            let g = random_uniform(7, 8, 26, 2, 2, seed);
            for theta in [0.0, 0.35, 0.5] {
                for (a, b, d) in [(1, 1, 1), (1, 1, 2)] {
                    let pro = ProParams::new(a, b, d, theta).unwrap();
                    let want = oracle_pbsfbc(&g, pro);
                    let got = run_bi(&g, pro);
                    assert_eq!(got, want, "seed {seed} {pro}");
                }
            }
        }
    }

    #[test]
    fn theta_zero_equals_plain_model() {
        use crate::config::FairParams;
        use crate::fairbcem_pp::fairbcem_pp_on_pruned;
        for seed in 30..40u64 {
            let g = random_uniform(9, 10, 40, 2, 2, seed);
            let pro = ProParams::new(2, 1, 1, 0.0).unwrap();
            let got = run_ss(&g, pro);
            let mut plain = CollectSink::default();
            fairbcem_pp_on_pruned(
                &g,
                FairParams::unchecked(2, 1, 1),
                VertexOrder::DegreeDesc,
                Budget::UNLIMITED,
                &mut plain,
            );
            let plain: BTreeSet<Biclique> = plain.bicliques.into_iter().collect();
            assert_eq!(got, plain, "seed {seed}");
        }
    }

    #[test]
    fn larger_theta_means_fewer_or_equal_results_at_delta_zero() {
        // With delta = 0 the fair sides are perfectly balanced, so
        // every plain SSFBC is proportion-fair for any theta <= 0.5:
        // counts must be monotone across theta in that regime.
        let g = random_uniform(10, 10, 45, 2, 2, 77);
        let mut prev = usize::MAX;
        for theta in [0.5, 0.4, 0.3, 0.0] {
            let pro = ProParams::new(1, 1, 0, theta).unwrap();
            let n = run_ss(&g, pro).len();
            assert!(n <= prev || prev == usize::MAX);
            prev = n;
        }
    }
}
