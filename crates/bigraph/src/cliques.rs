//! Maximal clique and weak fair clique enumeration on attributed
//! unipartite graphs.
//!
//! The colorful pruning of the fair biclique paper (§III-B) rides on
//! the *weak fair clique* model of Pan et al. \[31\]: Observation 1 says
//! the fair side of every SSFBC forms a clique with ≥ β vertices per
//! attribute in the 2-hop graph, hence lives inside a weak fair
//! clique, whose vertices survive the ego colorful core. This module
//! implements that substrate directly:
//!
//! * [`maximal_cliques`] — Bron–Kerbosch with greedy pivoting;
//! * [`weak_fair_cliques`] — maximal cliques whose attribute counts
//!   are all ≥ `k` (since the count constraint is monotone under
//!   vertex addition, weak fair cliques are exactly the maximal
//!   cliques passing the filter).
//!
//! The test suite uses these to certify Lemma 2 empirically: every
//! weak fair clique survives [`crate::coloring`]-based ego colorful
//! core peeling.

use crate::graph::{AttrValueId, VertexId};
use crate::unigraph::UniGraph;

/// Visit every maximal clique of `g` (Bron–Kerbosch with pivoting).
/// Cliques are reported as sorted vertex lists.
pub fn maximal_cliques(g: &UniGraph, visit: &mut dyn FnMut(&[VertexId])) {
    let n = g.n();
    if n == 0 {
        return;
    }
    let mut r: Vec<VertexId> = Vec::new();
    let p: Vec<VertexId> = (0..n as VertexId).collect();
    let x: Vec<VertexId> = Vec::new();
    bk(g, &mut r, p, x, visit);
}

fn bk(
    g: &UniGraph,
    r: &mut Vec<VertexId>,
    p: Vec<VertexId>,
    x: Vec<VertexId>,
    visit: &mut dyn FnMut(&[VertexId]),
) {
    if p.is_empty() && x.is_empty() {
        let mut c = r.clone();
        c.sort_unstable();
        visit(&c);
        return;
    }
    // Pivot: the vertex of P ∪ X with most neighbors in P.
    let pivot = p
        .iter()
        .chain(&x)
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&v| g.has_edge(u, v)).count())
        .expect("P ∪ X non-empty");
    // Branch on P \ N(pivot); note the pivot itself (when in P) stays
    // a candidate — it is never its own neighbor.
    let candidates: Vec<VertexId> = p
        .iter()
        .copied()
        .filter(|&v| !g.has_edge(pivot, v))
        .collect();
    let mut p = p;
    let mut x = x;
    for v in candidates {
        r.push(v);
        let p_next: Vec<VertexId> = p.iter().copied().filter(|&w| g.has_edge(v, w)).collect();
        let x_next: Vec<VertexId> = x.iter().copied().filter(|&w| g.has_edge(v, w)).collect();
        bk(g, r, p_next, x_next, visit);
        r.pop();
        p.retain(|&w| w != v);
        x.push(v);
    }
}

/// Visit every *weak fair clique* of `g`: maximal cliques in which
/// every attribute value of the domain appears at least `k` times.
pub fn weak_fair_cliques(g: &UniGraph, k: u32, visit: &mut dyn FnMut(&[VertexId])) {
    let n_attrs = (g.n_attr_values() as usize).max(1);
    maximal_cliques(g, &mut |c| {
        let mut counts = vec![0u32; n_attrs];
        for &v in c {
            counts[g.attr(v) as usize] += 1;
        }
        if counts.iter().all(|&c| c >= k) {
            visit(c);
        }
    });
}

/// Collecting wrapper around [`maximal_cliques`].
pub fn collect_maximal_cliques(g: &UniGraph) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    maximal_cliques(g, &mut |c| out.push(c.to_vec()));
    out
}

/// Collecting wrapper around [`weak_fair_cliques`].
pub fn collect_weak_fair_cliques(g: &UniGraph, k: u32) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    weak_fair_cliques(g, k, &mut |c| out.push(c.to_vec()));
    out
}

/// Oracle used in tests: maximal cliques by subset enumeration
/// (`n ≤ 20`).
pub fn maximal_cliques_bruteforce(g: &UniGraph) -> Vec<Vec<VertexId>> {
    let n = g.n();
    assert!(n <= 20);
    let is_clique = |mask: u32| -> bool {
        let vs: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| mask & (1 << v) != 0)
            .collect();
        vs.iter()
            .enumerate()
            .all(|(i, &a)| vs[i + 1..].iter().all(|&b| g.has_edge(a, b)))
    };
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        if !is_clique(mask) {
            continue;
        }
        let mut maximal = true;
        for v in 0..n {
            if mask & (1 << v) == 0 && is_clique(mask | (1 << v)) {
                maximal = false;
                break;
            }
        }
        if maximal {
            out.push(
                (0..n as VertexId)
                    .filter(|&v| mask & (1 << v) != 0)
                    .collect(),
            );
        }
    }
    out
}

/// Attribute counts of a vertex set (helper shared with tests).
pub fn attr_counts_of(g: &UniGraph, vs: &[VertexId]) -> Vec<u32> {
    let mut counts = vec![0u32; (g.n_attr_values() as usize).max(1)];
    for &v in vs {
        counts[g.attr(v) as usize] += 1;
    }
    counts
}

/// Convenience: does the whole clique `vs` satisfy `≥ k` per attribute?
pub fn is_k_fair(g: &UniGraph, vs: &[VertexId], k: u32) -> bool {
    attr_counts_of(g, vs).iter().all(|&c| c >= k)
}

#[allow(unused)]
fn _assert_attr_type(_: AttrValueId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use std::collections::BTreeSet;

    fn random_unigraph(n: usize, p: f64, seed: u64) -> UniGraph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 0..n as VertexId {
            for b in (a + 1)..n as VertexId {
                if rng.random_bool(p) {
                    edges.push((a, b));
                }
            }
        }
        let attrs: Vec<u16> = (0..n).map(|_| rng.random_range(0..2)).collect();
        UniGraph::from_edges(2, attrs, &edges)
    }

    #[test]
    fn triangle_plus_edge() {
        let g = UniGraph::from_edges(1, vec![0; 4], &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let cliques: BTreeSet<Vec<VertexId>> = collect_maximal_cliques(&g).into_iter().collect();
        let want: BTreeSet<Vec<VertexId>> = [vec![0, 1, 2], vec![2, 3]].into_iter().collect();
        assert_eq!(cliques, want);
    }

    #[test]
    fn matches_bruteforce_on_random_graphs() {
        for seed in 0..25u64 {
            let g = random_unigraph(9, 0.4, seed);
            let got: BTreeSet<Vec<VertexId>> = collect_maximal_cliques(&g).into_iter().collect();
            let want: BTreeSet<Vec<VertexId>> =
                maximal_cliques_bruteforce(&g).into_iter().collect();
            assert_eq!(got, want, "seed {seed}");
            assert_eq!(
                got.len(),
                collect_maximal_cliques(&g).len(),
                "no duplicates"
            );
        }
    }

    #[test]
    fn isolated_vertices_are_trivial_cliques() {
        let g = UniGraph::from_edges(1, vec![0; 3], &[(0, 1)]);
        let cliques: BTreeSet<Vec<VertexId>> = collect_maximal_cliques(&g).into_iter().collect();
        assert!(cliques.contains(&vec![0, 1]));
        assert!(cliques.contains(&vec![2]));
    }

    #[test]
    fn weak_fair_cliques_filter() {
        // K4 with attrs 0,0,1,1 plus pendant attr-0 vertex.
        let g = UniGraph::from_edges(
            2,
            vec![0, 0, 1, 1, 0],
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)],
        );
        let wfc = collect_weak_fair_cliques(&g, 2);
        assert_eq!(wfc, vec![vec![0, 1, 2, 3]]);
        let wfc1 = collect_weak_fair_cliques(&g, 1);
        // {3,4} has attrs {1,0}: qualifies at k=1.
        assert!(wfc1.contains(&vec![3, 4]));
        assert!(collect_weak_fair_cliques(&g, 3).is_empty());
    }

    #[test]
    fn weak_fair_cliques_survive_ego_colorful_core() {
        // Lemma 2's substrate claim (from Pan et al. [31]): every
        // vertex of a weak fair k-clique is in the ego colorful k-core.
        // We check via the core crate's peeling... but to keep this
        // crate self-contained, verify the *colorful degree bound*
        // directly: inside a clique all vertices have distinct colors,
        // so each member sees >= k colors per attribute among
        // N(v) ∪ {v}.
        use crate::coloring::greedy_color_by_degree;
        for seed in 0..10u64 {
            let g = random_unigraph(12, 0.5, seed);
            let coloring = greedy_color_by_degree(&g);
            for k in 1..3u32 {
                for clique in collect_weak_fair_cliques(&g, k) {
                    for &v in &clique {
                        let mut per_attr: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); 2];
                        for &w in g.neighbors(v) {
                            per_attr[g.attr(w) as usize].insert(coloring.color[w as usize]);
                        }
                        per_attr[g.attr(v) as usize].insert(coloring.color[v as usize]);
                        for (a, colors) in per_attr.iter().enumerate() {
                            assert!(colors.len() as u32 >= k, "seed {seed} k {k} v {v} attr {a}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn helpers() {
        let g = UniGraph::from_edges(2, vec![0, 1, 1], &[(0, 1), (1, 2)]);
        assert_eq!(attr_counts_of(&g, &[0, 1, 2]), vec![1, 2]);
        assert!(is_k_fair(&g, &[0, 1], 1));
        assert!(!is_k_fair(&g, &[1, 2], 1));
    }
}
