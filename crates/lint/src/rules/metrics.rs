//! `metrics-render-symmetry` — every public counter is rendered.
//!
//! # Rationale
//!
//! The service's [`Metrics`] registry exposes its counters through a
//! single name → field table (`counters()`) that drives both the
//! `STATS` flat rendering and the `METRICS` Prometheus exposition. A
//! `pub` `AtomicU64` field added to the struct but forgotten in that
//! table still compiles, still increments — and silently never
//! appears in either output. Dashboards read zero series, not zero
//! values; nobody notices until an incident.
//!
//! The check: every `pub <name>: AtomicU64` field declared in
//! `crates/service/src/metrics.rs` must also appear as the string
//! literal `"<name>"` somewhere in the same file's non-test code —
//! in practice, the `counters()` table. The reverse direction needs
//! no lint: a table entry referencing a deleted field fails to
//! compile.
//!
//! Suppress with `// fbe-lint: allow(metrics-render-symmetry):
//! <reason>` on the field declaration — legitimate only for a counter
//! that is deliberately internal (and then: why is it `pub`?).
//!
//! [`Metrics`]: ../../../service/src/metrics.rs

use crate::findings::Finding;
use crate::rules::is_ident;
use crate::walk::Analysis;

/// Rule identifier.
pub const NAME: &str = "metrics-render-symmetry";

/// Where the metrics registry lives.
const METRICS: &str = "crates/service/src/metrics.rs";

/// Extract the field name declared by `pub NAME: AtomicU64` on
/// scrubbed `code`, if any. Only plain `pub` counts: a private
/// atomic (e.g. a histogram's internal buckets) is not part of the
/// rendered surface.
fn pub_atomic_field(code: &str) -> Option<&str> {
    let at = code.find("pub ")?;
    let rest = code[at + "pub ".len()..].trim_start();
    let end = rest
        .char_indices()
        .find(|&(_, c)| !is_ident(c))
        .map_or(rest.len(), |(i, _)| i);
    let name = &rest[..end];
    let after = rest[end..].trim_start();
    let ty = after.strip_prefix(':')?.trim_start();
    if !name.is_empty() && ty.starts_with("AtomicU64") {
        Some(name)
    } else {
        None
    }
}

/// Run the rule.
pub fn check(analysis: &Analysis, findings: &mut Vec<Finding>) {
    let Some(file) = analysis.file(METRICS) else {
        return; // partial tree without the service crate
    };
    for (idx, line) in file.scrub.lines.iter().enumerate() {
        let lineno = idx + 1;
        if file.in_test(lineno) {
            continue;
        }
        let Some(name) = pub_atomic_field(&line.code) else {
            continue;
        };
        // String contents are scrubbed out of the code channel, so
        // the literal lookup reads the raw lines — restricted to
        // non-test regions so a unit test naming the counter cannot
        // satisfy the table requirement.
        let needle = format!("\"{name}\"");
        let rendered = file
            .scrub
            .raw
            .iter()
            .enumerate()
            .any(|(j, raw)| !file.in_test(j + 1) && raw.contains(&needle));
        if !rendered {
            findings.push(Finding::new(
                NAME,
                METRICS,
                lineno,
                format!(
                    "counter field `{name}` never appears as the literal \
                     \"{name}\" in {METRICS}: add it to the counters() \
                     name table or it is invisible to STATS and METRICS"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction() {
        assert_eq!(
            pub_atomic_field("    pub queries_total: AtomicU64,"),
            Some("queries_total")
        );
        assert_eq!(pub_atomic_field("pub x : AtomicU64,"), Some("x"));
        assert_eq!(pub_atomic_field("    count: AtomicU64,"), None);
        assert_eq!(pub_atomic_field("pub(crate) hidden: AtomicU64,"), None);
        assert_eq!(pub_atomic_field("pub latency: Histogram,"), None);
        assert_eq!(pub_atomic_field("pub fn observe(&self) {"), None);
    }
}
