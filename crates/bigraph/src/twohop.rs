//! 2-hop projections of the fair side (Algorithms 3 and 8 of the paper).
//!
//! * [`construct_2hop`] — `Construct2HopGraph`: connect two fair-side
//!   vertices iff they share at least `α` common neighbors. In a
//!   single-side fair biclique every pair of fair-side vertices shares
//!   the whole (≥ α)-sized other side, so the fair side of any SSFBC is
//!   a clique in this projection (Observation 1).
//! * [`construct_2hop_biside`] — `BiConstruct2HopGraph`: connect two
//!   fair-side vertices iff they share at least `α` common neighbors *of
//!   every attribute value* on the opposite side, matching the per-
//!   attribute lower bound of the bi-side model (Definition 4).
//!
//! Both run in `O(Σ_u d(u)²)` over the opposite side, using a workhorse
//! counting array with a touched-list reset so no per-vertex allocation
//! happens in the hot loop.

use crate::candidate::{and_count, BitRows, Substrate};
use crate::graph::{BipartiteGraph, Side, VertexId};
use crate::unigraph::UniGraph;

/// Build the single-side 2-hop graph `H` on `fair_side` of `g`:
/// `{x, y} ∈ E(H)` iff `|N(x) ∩ N(y)| ≥ alpha`.
///
/// `alpha = 0` would connect everything; callers always pass `alpha ≥ 1`.
/// Vertex ids and attributes of `H` coincide with those of `fair_side`.
///
/// Dispatches on [`Substrate::Auto`]: small dense (pruned) inputs run
/// the bitset-row pair scan, everything else the output-sensitive
/// counting pass. See [`construct_2hop_with`] to force a substrate.
pub fn construct_2hop(g: &BipartiteGraph, fair_side: Side, alpha: usize) -> UniGraph {
    construct_2hop_with(g, fair_side, alpha, Substrate::Auto)
}

/// [`construct_2hop`] with an explicit candidate substrate.
pub fn construct_2hop_with(
    g: &BipartiteGraph,
    fair_side: Side,
    alpha: usize,
    substrate: Substrate,
) -> UniGraph {
    let use_bitset = match substrate {
        Substrate::SortedVec => false,
        Substrate::Bitset => true,
        // The pair scan is Θ(n² · words): profitable only on small
        // dense cores, a stricter gate than the enumeration policy.
        Substrate::Auto => {
            g.n(fair_side) <= 1024
                && g.n(fair_side.other()) <= Substrate::AUTO_MAX_SIDE
                && g.density() >= 0.02
        }
    };
    if use_bitset {
        construct_2hop_bitset(g, fair_side, alpha)
    } else {
        construct_2hop_counting(g, fair_side, alpha)
    }
}

/// Bitset-row 2-hop: popcount every vertex pair's row `AND`. Wins on
/// small dense cores where rows are a few words and the counting
/// pass's `Σ d²` blows up.
fn construct_2hop_bitset(g: &BipartiteGraph, fair_side: Side, alpha: usize) -> UniGraph {
    let n = g.n(fair_side);
    let alpha = alpha.max(1);
    let rows = BitRows::from_side(g, fair_side);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for x in 0..n as VertexId {
        let rx = rows.row(x);
        // Skip rows that cannot reach alpha at all.
        if g.degree(fair_side, x) < alpha {
            continue;
        }
        for y in (x + 1)..n as VertexId {
            if g.degree(fair_side, y) >= alpha && and_count(rx, rows.row(y)) >= alpha {
                edges.push((x, y));
            }
        }
    }
    UniGraph::from_edges(
        g.n_attr_values(fair_side),
        g.attrs(fair_side).to_vec(),
        &edges,
    )
}

/// Counting-pass 2-hop (the classic `O(Σ_u d(u)²)` construction).
fn construct_2hop_counting(g: &BipartiteGraph, fair_side: Side, alpha: usize) -> UniGraph {
    let n = g.n(fair_side);
    let alpha = alpha.max(1);
    let mut count = vec![0u32; n];
    let mut touched: Vec<VertexId> = Vec::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();

    for v in 0..n as VertexId {
        debug_assert!(touched.is_empty());
        for &u in g.neighbors(fair_side, v) {
            for &w in g.neighbors(fair_side.other(), u) {
                if w != v {
                    if count[w as usize] == 0 {
                        touched.push(w);
                    }
                    count[w as usize] += 1;
                }
            }
        }
        for &w in &touched {
            // Emit each undirected edge once (w < v).
            if w < v && count[w as usize] as usize >= alpha {
                edges.push((w, v));
            }
            count[w as usize] = 0;
        }
        touched.clear();
    }

    UniGraph::from_edges(
        g.n_attr_values(fair_side),
        g.attrs(fair_side).to_vec(),
        &edges,
    )
}

/// Build the bi-side 2-hop graph on `fair_side` of `g`:
/// `{x, y} ∈ E(H)` iff for *every* attribute value `a` of the opposite
/// side, `x` and `y` share at least `alpha` common neighbors whose
/// attribute is `a`.
pub fn construct_2hop_biside(g: &BipartiteGraph, fair_side: Side, alpha: usize) -> UniGraph {
    let n = g.n(fair_side);
    let alpha = alpha.max(1);
    let n_attrs = g.n_attr_values(fair_side.other()) as usize;
    let other_attrs = g.attrs(fair_side.other());
    // Flattened per-(vertex, attr) counters.
    let mut count = vec![0u32; n * n_attrs];
    let mut touched: Vec<VertexId> = Vec::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();

    for v in 0..n as VertexId {
        debug_assert!(touched.is_empty());
        for &u in g.neighbors(fair_side, v) {
            let a = other_attrs[u as usize] as usize;
            for &w in g.neighbors(fair_side.other(), u) {
                if w != v {
                    let base = w as usize * n_attrs;
                    if count[base..base + n_attrs].iter().all(|&c| c == 0) {
                        touched.push(w);
                    }
                    count[base + a] += 1;
                }
            }
        }
        for &w in &touched {
            let base = w as usize * n_attrs;
            if w < v
                && count[base..base + n_attrs]
                    .iter()
                    .all(|&c| c as usize >= alpha)
            {
                edges.push((w, v));
            }
            count[base..base + n_attrs].iter_mut().for_each(|c| *c = 0);
        }
        touched.clear();
    }

    UniGraph::from_edges(
        g.n_attr_values(fair_side),
        g.attrs(fair_side).to_vec(),
        &edges,
    )
}

/// Parallel [`construct_2hop`]: partitions the fair side across
/// `n_threads` scoped worker threads, each with its own counting
/// array, and merges the per-worker edge lists. Output is identical to
/// the serial version (edge *sets* are deterministic; `UniGraph`
/// construction sorts).
///
/// Worth using when `Σ_u d(u)²` is large (dense pre-pruning graphs);
/// for the post-`FCore` graphs the paper's pipeline feeds this, the
/// serial version is usually already sub-millisecond.
pub fn construct_2hop_par(
    g: &BipartiteGraph,
    fair_side: Side,
    alpha: usize,
    n_threads: usize,
) -> UniGraph {
    let n = g.n(fair_side);
    let alpha = alpha.max(1);
    let n_threads = n_threads.clamp(1, n.max(1));
    if n_threads == 1 || n < 256 {
        return construct_2hop(g, fair_side, alpha);
    }
    let chunk = n.div_ceil(n_threads);
    let mut all_edges: Vec<Vec<(VertexId, VertexId)>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            handles.push(s.spawn(move || {
                let mut count = vec![0u32; n];
                let mut touched: Vec<VertexId> = Vec::new();
                let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
                for v in lo as VertexId..hi as VertexId {
                    for &u in g.neighbors(fair_side, v) {
                        for &w in g.neighbors(fair_side.other(), u) {
                            if w != v {
                                if count[w as usize] == 0 {
                                    touched.push(w);
                                }
                                count[w as usize] += 1;
                            }
                        }
                    }
                    for &w in &touched {
                        if w < v && count[w as usize] as usize >= alpha {
                            edges.push((w, v));
                        }
                        count[w as usize] = 0;
                    }
                    touched.clear();
                }
                edges
            }));
        }
        for h in handles {
            all_edges.push(h.join().expect("2-hop worker panicked"));
        }
    });
    let edges: Vec<(VertexId, VertexId)> = all_edges.concat();
    UniGraph::from_edges(
        g.n_attr_values(fair_side),
        g.attrs(fair_side).to_vec(),
        &edges,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// U = {0,1,2} (attrs 0,1,0), V = {0,1,2} (attrs 0,0,1).
    /// Edges: complete except (2,0).
    fn toy() -> BipartiteGraph {
        let mut b = GraphBuilder::new(2, 2);
        b.set_attrs_upper(&[0, 1, 0]);
        b.set_attrs_lower(&[0, 0, 1]);
        for (u, v) in [
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 0),
            (1, 1),
            (1, 2),
            (2, 1),
            (2, 2),
        ] {
            b.add_edge(u, v);
        }
        b.build().unwrap()
    }

    #[test]
    fn single_side_common_counts() {
        let g = toy();
        // common neighbors: (0,1): {0,1}=2; (0,2): {0,1}=2; (1,2): {0,1,2}=3
        let h2 = construct_2hop(&g, Side::Lower, 2);
        assert_eq!(h2.n_edges(), 3);
        let h3 = construct_2hop(&g, Side::Lower, 3);
        assert_eq!(h3.n_edges(), 1);
        assert!(h3.has_edge(1, 2));
        let h4 = construct_2hop(&g, Side::Lower, 4);
        assert_eq!(h4.n_edges(), 0);
        // attributes carried over
        assert_eq!(h2.attrs(), g.attrs(Side::Lower));
    }

    #[test]
    fn alpha_zero_is_clamped_to_one() {
        let g = toy();
        let h0 = construct_2hop(&g, Side::Lower, 0);
        let h1 = construct_2hop(&g, Side::Lower, 1);
        assert_eq!(h0.n_edges(), h1.n_edges());
    }

    #[test]
    fn biside_requires_every_attr() {
        let g = toy();
        // Upper attrs: u0=0, u1=1, u2=0.
        // Pair (v1, v2): common = {0,1,2} -> attr0 count 2 (u0,u2), attr1 count 1 (u1).
        // Pair (v0, v1): common = {0,1} -> attr0: 1, attr1: 1.
        // Pair (v0, v2): common = {0,1} -> attr0: 1, attr1: 1.
        let h1 = construct_2hop_biside(&g, Side::Lower, 1);
        assert_eq!(h1.n_edges(), 3);
        let h2 = construct_2hop_biside(&g, Side::Lower, 2);
        assert_eq!(h2.n_edges(), 0); // attr1 never reaches 2
    }

    #[test]
    fn upper_side_projection() {
        let g = toy();
        // pairs on U: (0,1): common {0,1,2}=3; (0,2): {1,2}=2; (1,2): {1,2}=2
        let h = construct_2hop(&g, Side::Upper, 3);
        assert_eq!(h.n_edges(), 1);
        assert!(h.has_edge(0, 1));
        assert_eq!(h.attrs(), g.attrs(Side::Upper));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(2, 2).build().unwrap();
        let h = construct_2hop(&g, Side::Lower, 1);
        assert_eq!(h.n(), 0);
        let hb = construct_2hop_biside(&g, Side::Lower, 1);
        assert_eq!(hb.n(), 0);
        let hp = construct_2hop_par(&g, Side::Lower, 1, 4);
        assert_eq!(hp.n(), 0);
    }

    #[test]
    fn parallel_matches_serial() {
        use crate::generate::random_uniform;
        // Above the 256-vertex threshold so the threaded path runs.
        let g = random_uniform(120, 400, 3000, 2, 2, 31);
        for alpha in [1usize, 2, 3] {
            let serial = construct_2hop(&g, Side::Lower, alpha);
            for threads in [2usize, 3, 8] {
                let par = construct_2hop_par(&g, Side::Lower, alpha, threads);
                assert_eq!(par.n(), serial.n());
                assert_eq!(par.n_edges(), serial.n_edges(), "alpha={alpha} t={threads}");
                for v in 0..serial.n() as VertexId {
                    assert_eq!(par.neighbors(v), serial.neighbors(v));
                }
            }
        }
        // Upper side too.
        let s = construct_2hop(&g, Side::Upper, 2);
        let p = construct_2hop_par(&g, Side::Upper, 2, 4);
        assert_eq!(s.n_edges(), p.n_edges());
    }

    #[test]
    fn substrates_agree_on_2hop() {
        use crate::generate::random_uniform;
        let g = random_uniform(30, 45, 350, 2, 2, 13);
        for side in [Side::Lower, Side::Upper] {
            for alpha in 1usize..5 {
                let counting = construct_2hop_with(&g, side, alpha, Substrate::SortedVec);
                let bitset = construct_2hop_with(&g, side, alpha, Substrate::Bitset);
                assert_eq!(counting.n(), bitset.n());
                assert_eq!(counting.n_edges(), bitset.n_edges(), "{side} α={alpha}");
                for v in 0..counting.n() as VertexId {
                    assert_eq!(counting.neighbors(v), bitset.neighbors(v), "{side} {v}");
                }
                let auto = construct_2hop_with(&g, side, alpha, Substrate::Auto);
                assert_eq!(auto.n_edges(), counting.n_edges());
            }
        }
    }

    #[test]
    fn matches_brute_force_on_random_graph() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut b = GraphBuilder::new(2, 2);
        b.ensure_vertices(8, 10);
        for u in 0..8u32 {
            for v in 0..10u32 {
                if rng.random_bool(0.35) {
                    b.add_edge(u, v);
                }
            }
        }
        let attrs_l: Vec<u16> = (0..10).map(|_| rng.random_range(0..2u16)).collect();
        let attrs_u: Vec<u16> = (0..8).map(|_| rng.random_range(0..2u16)).collect();
        b.set_attrs_lower(&attrs_l);
        b.set_attrs_upper(&attrs_u);
        let g = b.build().unwrap();
        for alpha in 1..4usize {
            let h = construct_2hop(&g, Side::Lower, alpha);
            for x in 0..10u32 {
                for y in (x + 1)..10u32 {
                    let c = crate::intersect_sorted_count(
                        g.neighbors(Side::Lower, x),
                        g.neighbors(Side::Lower, y),
                    );
                    assert_eq!(h.has_edge(x, y), c >= alpha, "alpha={alpha} pair=({x},{y})");
                }
            }
            let hb = construct_2hop_biside(&g, Side::Lower, alpha);
            for x in 0..10u32 {
                for y in (x + 1)..10u32 {
                    let mut common = Vec::new();
                    crate::intersect_sorted_into(
                        g.neighbors(Side::Lower, x),
                        g.neighbors(Side::Lower, y),
                        &mut common,
                    );
                    let mut per_attr = [0usize; 2];
                    for &u in &common {
                        per_attr[g.attr(Side::Upper, u) as usize] += 1;
                    }
                    let want = per_attr.iter().all(|&c| c >= alpha);
                    assert_eq!(hb.has_edge(x, y), want, "bi alpha={alpha} pair=({x},{y})");
                }
            }
        }
    }
}
