//! Invariants on medium graphs (too large for the oracle): algorithm
//! agreement, pruning losslessness, ordering invariance, and
//! definition-level validity of every emitted biclique.

use fair_biclique::biclique::{Biclique, CollectSink};
use fair_biclique::config::{Budget, FairParams, ProParams, PruneKind, RunConfig, VertexOrder};
use fair_biclique::pipeline::{
    enumerate_bsfbc, enumerate_pssfbc, enumerate_ssfbc, run_bsfbc, run_ssfbc, BiAlgorithm,
    SsAlgorithm,
};
use fbe_integration::{assert_valid_bsfbc, assert_valid_pssfbc, assert_valid_ssfbc, medium_graph};
use std::collections::BTreeSet;

fn ss_set(
    g: &bigraph::BipartiteGraph,
    params: FairParams,
    algo: SsAlgorithm,
    prune: PruneKind,
    order: VertexOrder,
) -> BTreeSet<Biclique> {
    let cfg = RunConfig {
        prune,
        order,
        budget: Budget::UNLIMITED,
        ..RunConfig::default()
    };
    let mut sink = CollectSink::default();
    run_ssfbc(g, params, algo, &cfg, &mut sink);
    let set: BTreeSet<Biclique> = sink.bicliques.iter().cloned().collect();
    assert_eq!(set.len(), sink.bicliques.len(), "duplicates");
    set
}

#[test]
fn ssfbc_agreement_across_algorithms_prunings_orderings() {
    for seed in 0..6u64 {
        let g = medium_graph(seed);
        let params = FairParams::unchecked(2, 2, 1);
        let reference = ss_set(
            &g,
            params,
            SsAlgorithm::FairBcemPP,
            PruneKind::Colorful,
            VertexOrder::DegreeDesc,
        );
        assert!(
            !reference.is_empty(),
            "seed {seed} should have results (planted blocks)"
        );
        for algo in [SsAlgorithm::FairBcem, SsAlgorithm::FairBcemPP] {
            for prune in [PruneKind::None, PruneKind::FCore, PruneKind::Colorful] {
                for order in [VertexOrder::IdAsc, VertexOrder::DegreeDesc] {
                    let got = ss_set(&g, params, algo, prune, order);
                    assert_eq!(
                        got, reference,
                        "seed {seed} algo {algo:?} prune {prune:?} order {order:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn ssfbc_results_satisfy_definition() {
    for seed in 10..16u64 {
        let g = medium_graph(seed);
        for params in [
            FairParams::unchecked(2, 2, 1),
            FairParams::unchecked(3, 2, 2),
        ] {
            let report = enumerate_ssfbc(&g, params, &RunConfig::default());
            for bc in &report.bicliques {
                assert_valid_ssfbc(&g, bc, params);
            }
        }
    }
}

#[test]
fn bsfbc_results_satisfy_definition_and_algorithms_agree() {
    for seed in 20..24u64 {
        let g = medium_graph(seed);
        let params = FairParams::unchecked(2, 2, 1);
        let report = enumerate_bsfbc(&g, params, &RunConfig::default());
        for bc in &report.bicliques {
            assert_valid_bsfbc(&g, bc, params);
        }
        let reference: BTreeSet<Biclique> = report.bicliques.into_iter().collect();
        for algo in [BiAlgorithm::BFairBcem, BiAlgorithm::BFairBcemPP] {
            for prune in [PruneKind::FCore, PruneKind::Colorful] {
                let cfg = RunConfig {
                    prune,
                    order: VertexOrder::IdAsc,
                    budget: Budget::UNLIMITED,
                    ..RunConfig::default()
                };
                let mut sink = CollectSink::default();
                run_bsfbc(&g, params, algo, &cfg, &mut sink);
                let got: BTreeSet<Biclique> = sink.bicliques.into_iter().collect();
                assert_eq!(got, reference, "seed {seed} algo {algo:?} prune {prune:?}");
            }
        }
    }
}

#[test]
fn pssfbc_results_satisfy_definition() {
    for seed in 30..34u64 {
        let g = medium_graph(seed);
        let pro = ProParams::new(2, 2, 2, 0.4).unwrap();
        let report = enumerate_pssfbc(&g, pro, &RunConfig::default());
        for bc in &report.bicliques {
            assert_valid_pssfbc(&g, bc, pro);
        }
    }
}

#[test]
fn every_bsfbc_lower_side_is_an_ssfbc_lower_side() {
    // Observation 6 at medium scale.
    for seed in 40..44u64 {
        let g = medium_graph(seed);
        let params = FairParams::unchecked(2, 2, 1);
        let ss = enumerate_ssfbc(&g, params, &RunConfig::default());
        let bs = enumerate_bsfbc(&g, params, &RunConfig::default());
        let lowers: BTreeSet<_> = ss.bicliques.iter().map(|b| b.lower.clone()).collect();
        for b in &bs.bicliques {
            assert!(lowers.contains(&b.lower), "seed {seed}: {b}");
        }
    }
}

#[test]
fn tighter_parameters_give_fewer_results() {
    let g = medium_graph(50);
    let loose = enumerate_ssfbc(&g, FairParams::unchecked(2, 1, 2), &RunConfig::default());
    let tight_alpha = enumerate_ssfbc(&g, FairParams::unchecked(4, 1, 2), &RunConfig::default());
    // Raising alpha can only reduce the count of *qualifying* maximal
    // bicliques' expansions... the paper observes monotone counts.
    assert!(tight_alpha.bicliques.len() <= loose.bicliques.len());
    let tight_beta = enumerate_ssfbc(&g, FairParams::unchecked(2, 3, 2), &RunConfig::default());
    assert!(tight_beta.bicliques.len() <= loose.bicliques.len());
}

#[test]
fn budget_yields_subset_on_medium_graphs() {
    let g = medium_graph(60);
    let params = FairParams::unchecked(2, 2, 1);
    let full = enumerate_ssfbc(&g, params, &RunConfig::default());
    let full_set: BTreeSet<_> = full.bicliques.into_iter().collect();
    let cfg = RunConfig {
        budget: Budget::nodes(3),
        ..RunConfig::default()
    };
    let capped = enumerate_ssfbc(&g, params, &cfg);
    for bc in capped.bicliques {
        assert!(full_set.contains(&bc));
    }
}

#[test]
fn flipped_graph_mines_upper_side_fairness() {
    // Mining the upper side fair = flipping, mining, flipping results.
    let g = medium_graph(70);
    let params = FairParams::unchecked(2, 2, 1);
    let flipped = g.flipped();
    let report = enumerate_ssfbc(&flipped, params, &RunConfig::default());
    for bc in &report.bicliques {
        // In flipped coordinates: upper = original lower.
        let restored = Biclique::new(bc.lower.clone(), bc.upper.clone());
        fbe_integration::assert_biclique(&g, &restored);
    }
}
