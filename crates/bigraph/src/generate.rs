//! Seeded synthetic bipartite graph generators.
//!
//! The paper evaluates on five KONECT downloads; this environment has no
//! network access, so the experiment harness substitutes seeded synthetic
//! analogs (see DESIGN.md §5). The generators here reproduce the two
//! properties that drive the algorithms' relative behaviour:
//!
//! 1. heavy-tailed degree distributions (Chung–Lu with power-law
//!    expected degrees), which govern pruning power; and
//! 2. locally dense blocks ([`plant_bicliques`]), which govern how many
//!    maximal/fair bicliques exist.
//!
//! Attribute values are assigned uniformly at random, exactly as the
//! paper does for its non-attributed inputs ("we randomly assign an
//! attribute to each vertex").
//!
//! All generators are deterministic in their seed.

use crate::builder::GraphBuilder;
use crate::graph::{AttrValueId, BipartiteGraph, VertexId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Erdős–Rényi-style bipartite `G(n_u, n_v, m)`: `m` edges sampled
/// uniformly without replacement (by rejection), attributes uniform.
pub fn random_uniform(
    n_upper: usize,
    n_lower: usize,
    n_edges: usize,
    n_upper_attrs: AttrValueId,
    n_lower_attrs: AttrValueId,
    seed: u64,
) -> BipartiteGraph {
    assert!(n_upper > 0 && n_lower > 0, "sides must be non-empty");
    let max_edges = n_upper.saturating_mul(n_lower);
    let m = n_edges.min(max_edges);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n_upper_attrs, n_lower_attrs).with_edge_capacity(m);
    b.ensure_vertices(n_upper, n_lower);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    while seen.len() < m {
        let u = rng.random_range(0..n_upper) as VertexId;
        let v = rng.random_range(0..n_lower) as VertexId;
        if seen.insert((u, v)) {
            b.add_edge(u, v);
        }
    }
    assign_uniform_attrs(
        &mut b,
        n_upper,
        n_lower,
        n_upper_attrs,
        n_lower_attrs,
        &mut rng,
    );
    b.build().expect("generator produces valid graphs")
}

/// Chung–Lu bipartite graph with power-law expected degrees.
///
/// Vertex `i` on each side gets weight `(i + 1)^(-1/(γ-1))`; `m` edge
/// slots are sampled with both endpoints drawn proportionally to their
/// side's weights, then deduplicated (so the realized edge count is
/// slightly below `m` — the same regime as real sparse networks).
///
/// `gamma` around 2.0–2.5 matches the skew of the paper's affiliation
/// and authorship networks.
#[allow(clippy::too_many_arguments)]
pub fn chung_lu_power_law(
    n_upper: usize,
    n_lower: usize,
    m: usize,
    gamma_upper: f64,
    gamma_lower: f64,
    n_upper_attrs: AttrValueId,
    n_lower_attrs: AttrValueId,
    seed: u64,
) -> BipartiteGraph {
    assert!(n_upper > 0 && n_lower > 0, "sides must be non-empty");
    assert!(
        gamma_upper > 1.0 && gamma_lower > 1.0,
        "gamma must exceed 1"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let cdf_u = powerlaw_cdf(n_upper, gamma_upper);
    let cdf_v = powerlaw_cdf(n_lower, gamma_lower);
    let mut b = GraphBuilder::new(n_upper_attrs, n_lower_attrs).with_edge_capacity(m);
    b.ensure_vertices(n_upper, n_lower);
    for _ in 0..m {
        let u = sample_cdf(&cdf_u, &mut rng);
        let v = sample_cdf(&cdf_v, &mut rng);
        b.add_edge(u, v);
    }
    assign_uniform_attrs(
        &mut b,
        n_upper,
        n_lower,
        n_upper_attrs,
        n_lower_attrs,
        &mut rng,
    );
    b.build().expect("generator produces valid graphs")
}

/// Overlay `k` random dense blocks onto `base`, returning a new graph.
///
/// Each block picks `block_upper` upper and `block_lower` lower vertices
/// uniformly and adds every cross edge with probability `fill` — this
/// plants (near-)bicliques so fair biclique enumeration has non-trivial
/// output, mirroring the community structure of the real corpora.
pub fn plant_bicliques(
    base: &BipartiteGraph,
    k: usize,
    block_upper: usize,
    block_lower: usize,
    fill: f64,
    seed: u64,
) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_u = base.n_upper();
    let n_v = base.n_lower();
    assert!(
        block_upper <= n_u && block_lower <= n_v,
        "block larger than side"
    );
    let mut b = GraphBuilder::new(
        base.n_attr_values(crate::Side::Upper),
        base.n_attr_values(crate::Side::Lower),
    )
    .with_edge_capacity(base.n_edges() + k * block_upper * block_lower);
    b.ensure_vertices(n_u, n_v);
    for (u, v) in base.edges() {
        b.add_edge(u, v);
    }
    b.set_attrs_upper(base.attrs(crate::Side::Upper));
    b.set_attrs_lower(base.attrs(crate::Side::Lower));
    for _ in 0..k {
        let us = sample_distinct(n_u, block_upper, &mut rng);
        let vs = sample_distinct(n_v, block_lower, &mut rng);
        for &u in &us {
            for &v in &vs {
                if fill >= 1.0 || rng.random_bool(fill) {
                    b.add_edge(u, v);
                }
            }
        }
    }
    b.build().expect("generator produces valid graphs")
}

/// Reassign every attribute uniformly at random with a fresh seed,
/// returning a new graph (the paper's attribute protocol, exposed for
/// sensitivity experiments).
pub fn with_random_attrs(
    base: &BipartiteGraph,
    n_upper_attrs: AttrValueId,
    n_lower_attrs: AttrValueId,
    seed: u64,
) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n_upper_attrs, n_lower_attrs).with_edge_capacity(base.n_edges());
    b.ensure_vertices(base.n_upper(), base.n_lower());
    for (u, v) in base.edges() {
        b.add_edge(u, v);
    }
    let n_u = base.n_upper();
    let n_v = base.n_lower();
    assign_uniform_attrs(&mut b, n_u, n_v, n_upper_attrs, n_lower_attrs, &mut rng);
    b.build().expect("generator produces valid graphs")
}

fn assign_uniform_attrs(
    b: &mut GraphBuilder,
    n_upper: usize,
    n_lower: usize,
    n_upper_attrs: AttrValueId,
    n_lower_attrs: AttrValueId,
    rng: &mut StdRng,
) {
    let ua: Vec<AttrValueId> = (0..n_upper)
        .map(|_| rng.random_range(0..n_upper_attrs.max(1)))
        .collect();
    let la: Vec<AttrValueId> = (0..n_lower)
        .map(|_| rng.random_range(0..n_lower_attrs.max(1)))
        .collect();
    b.set_attrs_upper(&ua);
    b.set_attrs_lower(&la);
}

/// Reassign *lower-side* attributes with a skewed Bernoulli split:
/// each vertex gets value 1 with probability `p_minority` (domain is
/// forced to two values). The paper assigns attributes uniformly; this
/// variant supports sensitivity studies of how attribute imbalance
/// affects pruning power and result counts — at `p_minority → 0` the
/// minority class starves and fair bicliques vanish.
pub fn with_skewed_lower_attrs(
    base: &BipartiteGraph,
    p_minority: f64,
    seed: u64,
) -> BipartiteGraph {
    assert!((0.0..=1.0).contains(&p_minority), "probability in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(base.n_attr_values(crate::Side::Upper).max(2), 2)
        .with_edge_capacity(base.n_edges());
    b.ensure_vertices(base.n_upper(), base.n_lower());
    for (u, v) in base.edges() {
        b.add_edge(u, v);
    }
    b.set_attrs_upper(base.attrs(crate::Side::Upper));
    let la: Vec<AttrValueId> = (0..base.n_lower())
        .map(|_| AttrValueId::from(rng.random_bool(p_minority)))
        .collect();
    b.set_attrs_lower(&la);
    b.build().expect("generator produces valid graphs")
}

/// Prefix-sum CDF of power-law weights `(i+1)^(-1/(γ-1))`.
fn powerlaw_cdf(n: usize, gamma: f64) -> Vec<f64> {
    let exp = -1.0 / (gamma - 1.0);
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += ((i + 1) as f64).powf(exp);
        cdf.push(acc);
    }
    cdf
}

fn sample_cdf(cdf: &[f64], rng: &mut StdRng) -> VertexId {
    let total = *cdf.last().expect("non-empty cdf");
    let x = rng.random_range(0.0..total);
    cdf.partition_point(|&c| c <= x) as VertexId
}

fn sample_distinct(n: usize, k: usize, rng: &mut StdRng) -> Vec<VertexId> {
    debug_assert!(k <= n);
    let mut picked = std::collections::HashSet::with_capacity(k * 2);
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let x = rng.random_range(0..n) as VertexId;
        if picked.insert(x) {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Side;

    #[test]
    fn uniform_is_deterministic_and_valid() {
        let a = random_uniform(20, 30, 100, 2, 2, 9);
        let b = random_uniform(20, 30, 100, 2, 2, 9);
        assert_eq!(a.n_edges(), 100);
        assert_eq!(a.n_edges(), b.n_edges());
        assert_eq!(a.attrs(Side::Lower), b.attrs(Side::Lower));
        assert!(a.edges().zip(b.edges()).all(|(x, y)| x == y));
        a.validate().unwrap();
        let c = random_uniform(20, 30, 100, 2, 2, 10);
        assert!(a.edges().zip(c.edges()).any(|(x, y)| x != y));
    }

    #[test]
    fn uniform_caps_at_complete_graph() {
        let g = random_uniform(3, 3, 100, 1, 1, 1);
        assert_eq!(g.n_edges(), 9);
    }

    #[test]
    fn chung_lu_is_skewed() {
        let g = chung_lu_power_law(200, 300, 3000, 2.1, 2.1, 2, 2, 5);
        g.validate().unwrap();
        assert!(g.n_edges() > 1000);
        // Head vertices should far out-degree tail vertices.
        let head: usize = (0..5).map(|u| g.degree(Side::Upper, u)).sum();
        let tail: usize = (150..155).map(|u| g.degree(Side::Upper, u)).sum();
        assert!(head > tail * 3, "head {head} vs tail {tail}");
    }

    #[test]
    fn chung_lu_deterministic() {
        let a = chung_lu_power_law(50, 60, 400, 2.2, 2.4, 2, 2, 77);
        let b = chung_lu_power_law(50, 60, 400, 2.2, 2.4, 2, 2, 77);
        assert_eq!(a.n_edges(), b.n_edges());
        assert!(a.edges().zip(b.edges()).all(|(x, y)| x == y));
    }

    #[test]
    fn planting_adds_dense_blocks() {
        let base = random_uniform(40, 40, 50, 2, 2, 3);
        let g = plant_bicliques(&base, 2, 4, 5, 1.0, 4);
        g.validate().unwrap();
        assert!(g.n_edges() >= base.n_edges());
        assert!(g.n_edges() <= base.n_edges() + 2 * 4 * 5);
        // attributes preserved
        assert_eq!(g.attrs(Side::Upper), base.attrs(Side::Upper));
        assert_eq!(g.attrs(Side::Lower), base.attrs(Side::Lower));
    }

    #[test]
    fn reattr_preserves_structure() {
        let base = random_uniform(10, 10, 30, 2, 2, 3);
        let g = with_random_attrs(&base, 3, 3, 99);
        assert_eq!(g.n_edges(), base.n_edges());
        assert!(g.edges().zip(base.edges()).all(|(x, y)| x == y));
        assert_eq!(g.n_attr_values(Side::Upper), 3);
        assert!(g.attrs(Side::Lower).iter().all(|&a| a < 3));
    }

    #[test]
    fn skewed_attrs_skew() {
        let base = random_uniform(30, 400, 1200, 2, 2, 2);
        let g = with_skewed_lower_attrs(&base, 0.1, 7);
        let minority = g.attrs(Side::Lower).iter().filter(|&&a| a == 1).count();
        assert!(
            minority > 10 && minority < 100,
            "≈10% of 400, got {minority}"
        );
        // Structure untouched.
        assert_eq!(g.n_edges(), base.n_edges());
        assert!(g.edges().zip(base.edges()).all(|(a, b)| a == b));
        // Extremes.
        let all0 = with_skewed_lower_attrs(&base, 0.0, 7);
        assert!(all0.attrs(Side::Lower).iter().all(|&a| a == 0));
        let all1 = with_skewed_lower_attrs(&base, 1.0, 7);
        assert!(all1.attrs(Side::Lower).iter().all(|&a| a == 1));
    }

    #[test]
    fn attr_values_cover_domain() {
        let g = random_uniform(200, 200, 100, 2, 2, 11);
        for side in [Side::Upper, Side::Lower] {
            let mut seen = [false; 2];
            for &a in g.attrs(side) {
                seen[a as usize] = true;
            }
            assert!(
                seen[0] && seen[1],
                "both attr values should occur on {side}"
            );
        }
    }
}
