//! `atomic-ordering` — every memory-ordering choice is a decision.
//!
//! # Rationale
//!
//! The workspace uses atomics in three places with three different
//! correctness arguments: the shared enumeration budget
//! (`core::config` — counters whose only consumer tolerates slack),
//! the service metrics registry (`service::metrics` — statistics, not
//! synchronization), and ad-hoc sites elsewhere (catalog epochs,
//! future subsystems). The first two are *audited cores*: their module
//! docs state the ordering argument once for every site inside, so
//! individual `Ordering::Relaxed` uses there are covered.
//!
//! Everywhere else, an `Ordering::Relaxed`/`SeqCst`/`Acquire`/
//! `Release`/`AcqRel` token must carry an inline justification —
//! `// lint: ordering: <why this ordering is sufficient>` on the same
//! line or within the two lines above. `Relaxed` without an argument
//! is how publication bugs are born; `SeqCst` without an argument is
//! how "just to be safe" hides a missing argument and costs a fence.
//!
//! Suppress with `// fbe-lint: allow(atomic-ordering): <reason>` only
//! when a justification comment is genuinely impossible (e.g.
//! generated code).

use crate::findings::Finding;
use crate::rules::{crate_sources, justified_nearby, token_positions};
use crate::walk::Analysis;

/// Rule identifier.
pub const NAME: &str = "atomic-ordering";

/// Modules whose docs carry a blanket ordering argument.
const AUDITED: &[&str] = &["crates/core/src/config.rs", "crates/service/src/metrics.rs"];

/// The atomic (not `cmp`) ordering variants.
const VARIANTS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::SeqCst",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
];

/// The justification marker.
pub const MARKER: &str = "lint: ordering:";

/// Run the rule.
pub fn check(analysis: &Analysis, findings: &mut Vec<Finding>) {
    for file in crate_sources(analysis) {
        if AUDITED.contains(&file.path.as_str()) {
            continue;
        }
        for (idx, line) in file.scrub.lines.iter().enumerate() {
            let lineno = idx + 1;
            if file.in_test(lineno) {
                continue;
            }
            for v in VARIANTS {
                if token_positions(&line.code, v).is_empty() {
                    continue;
                }
                if !justified_nearby(file, lineno, 2, MARKER) {
                    findings.push(Finding::new(
                        NAME,
                        &file.path,
                        lineno,
                        format!(
                            "`{v}` outside the audited cores without a \
                             `// {MARKER} ...` justification comment"
                        ),
                    ));
                }
            }
        }
    }
}
