//! The rule registry and shared matching helpers.
//!
//! Every rule is a pure function over the scanned [`Analysis`]; rules
//! never read the filesystem themselves, so the same code path serves
//! the real workspace and the embedded fixture self-tests.

use crate::findings::Finding;
use crate::walk::{Analysis, SourceFile};

pub mod atomics;
pub mod branch_state;
pub mod determinism;
pub mod locks;
pub mod metrics;
pub mod panic_paths;
pub mod symmetry;
pub mod unsafe_code;

/// One registered rule.
pub struct Rule {
    /// Stable identifier, used in output and `allow(...)` comments.
    pub name: &'static str,
    /// One-line description for `--list-rules` and the README catalog.
    pub summary: &'static str,
    /// The check itself.
    pub check: fn(&Analysis, &mut Vec<Finding>),
}

/// All rules, in catalog order.
///
/// To add a rule: write a module with a `check(&Analysis, &mut
/// Vec<Finding>)` function and a rustdoc'd rationale, register it
/// here, add a positive/negative fixture pair in `fixtures.rs`, and
/// document it in the README's rule catalog.
pub const RULES: &[Rule] = &[
    Rule {
        name: panic_paths::NAME,
        summary: "no unwrap/expect/panic/indexing-by-literal in server and CLI request paths",
        check: panic_paths::check,
    },
    Rule {
        name: locks::NAME,
        summary: "no nested Mutex acquisition while a guard is held; poisoning policy documented",
        check: locks::check,
    },
    Rule {
        name: atomics::NAME,
        summary: "atomic Ordering choices outside the audited cores carry a justification",
        check: atomics::check,
    },
    Rule {
        name: symmetry::NAME,
        summary: "public *_with drivers have non-_with wrappers; protocol verbs match the README",
        check: symmetry::check,
    },
    Rule {
        name: determinism::NAME,
        summary: "no HashMap/HashSet in core (iteration order feeds canonical emission)",
        check: determinism::check,
    },
    Rule {
        name: unsafe_code::NAME,
        summary: "crates with zero unsafe tokens must #![forbid(unsafe_code)]",
        check: unsafe_code::check,
    },
    Rule {
        name: branch_state::NAME,
        summary: "walker branch state is cloned only in the blessed split-point snapshot helper",
        check: branch_state::check,
    },
    Rule {
        name: metrics::NAME,
        summary: "every pub AtomicU64 counter on Metrics appears in the counters() render table",
        check: metrics::check,
    },
];

/// Look up a rule by name.
pub fn rule(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// True when `c` continues an identifier.
pub(crate) fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of `tok` in `code` at identifier boundaries (so
/// `unwrap` does not match `unwrap_or`, and `[` / `.` edges in the
/// token itself are fine).
pub(crate) fn token_positions(code: &str, tok: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(tok) {
        let at = from + rel;
        let before_ok = at == 0
            || !is_ident(code[..at].chars().next_back().unwrap_or(' '))
            || !tok.starts_with(is_ident);
        let after = code[at + tok.len()..].chars().next();
        let after_ok = !tok.ends_with(|c: char| is_ident(c)) || !after.is_some_and(is_ident);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + tok.len().max(1);
    }
    out
}

/// True when `needle` occurs (case-insensitively) in the raw text of
/// lines `line - above ..= line` of `file` — how rules look for
/// justification comments "nearby".
pub(crate) fn justified_nearby(file: &SourceFile, line: usize, above: usize, needle: &str) -> bool {
    let lo = line.saturating_sub(above).max(1);
    let needle = needle.to_ascii_lowercase();
    (lo..=line).any(|l| file.scrub.raw(l).to_ascii_lowercase().contains(&needle))
}

/// Files under `crates/<anything>/src/`.
pub(crate) fn crate_sources(analysis: &Analysis) -> impl Iterator<Item = &SourceFile> {
    analysis
        .files
        .iter()
        .filter(|f| f.path.starts_with("crates/") && f.path.contains("/src/"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(rule(r.name).is_some());
            assert!(
                !RULES[..i].iter().any(|p| p.name == r.name),
                "duplicate rule name {}",
                r.name
            );
        }
        assert!(rule("no-such-rule").is_none());
    }

    #[test]
    fn token_positions_respect_boundaries() {
        assert_eq!(token_positions("x.unwrap_or(y)", ".unwrap()").len(), 0);
        assert_eq!(token_positions("x.unwrap()", ".unwrap()").len(), 1);
        assert_eq!(token_positions("my_panic!()", "panic!").len(), 0);
        assert_eq!(token_positions("panic!(\"\")", "panic!").len(), 1);
        assert_eq!(token_positions("HashMapLike", "HashMap").len(), 0);
        assert_eq!(token_positions("a HashMap b HashMap", "HashMap").len(), 2);
    }
}
