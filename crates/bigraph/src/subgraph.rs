//! Induced subgraphs, vertex-set restriction, and edge sampling.
//!
//! The pruning algorithms peel vertices and then hand the enumerators a
//! *compacted* graph (dense ids again) together with the mapping back to
//! the original ids; [`induce`] produces exactly that. [`sample_edges`]
//! implements the 20%–100% edge subsets of the paper's scalability
//! experiment (Exp-5).

use crate::builder::GraphBuilder;
use crate::graph::{BipartiteGraph, Side, VertexId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A compacted induced subgraph plus the maps back to the parent graph.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The compacted subgraph (dense vertex ids on both sides).
    pub graph: BipartiteGraph,
    /// `upper_to_parent[new_id] = old_id` for upper vertices.
    pub upper_to_parent: Vec<VertexId>,
    /// `lower_to_parent[new_id] = old_id` for lower vertices.
    pub lower_to_parent: Vec<VertexId>,
}

impl InducedSubgraph {
    /// Map a subgraph vertex back to the parent graph.
    #[inline]
    pub fn to_parent(&self, side: Side, v: VertexId) -> VertexId {
        match side {
            Side::Upper => self.upper_to_parent[v as usize],
            Side::Lower => self.lower_to_parent[v as usize],
        }
    }

    /// Map a set of subgraph vertices back to (sorted) parent ids.
    pub fn set_to_parent(&self, side: Side, vs: &[VertexId]) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = vs.iter().map(|&v| self.to_parent(side, v)).collect();
        out.sort_unstable();
        out
    }

    /// Relabel both sides in non-increasing degree order (ties by
    /// current id), composing the parent maps so results still
    /// translate to original ids.
    ///
    /// Pruned-core enumeration touches high-degree vertices far more
    /// often than fringe ones; giving them the smallest ids packs
    /// their CSR adjacency (and bitset rows, which are indexed by
    /// vertex id) into the same few cache lines. Results are
    /// label-invariant once mapped back to parent ids — only the
    /// discovery order of the walk changes.
    pub fn relabel_degree_desc(&self) -> InducedSubgraph {
        let g = &self.graph;
        // perm[new_id] = old_id, sorted by (degree desc, old id asc).
        let perm = |side: Side, n: usize| -> Vec<VertexId> {
            let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
            ids.sort_by_key(|&v| (std::cmp::Reverse(g.degree(side, v)), v));
            ids
        };
        let perm_u = perm(Side::Upper, g.n_upper());
        let perm_v = perm(Side::Lower, g.n_lower());
        let invert = |perm: &[VertexId]| -> Vec<VertexId> {
            let mut inv = vec![0 as VertexId; perm.len()];
            for (new, &old) in perm.iter().enumerate() {
                inv[old as usize] = new as VertexId;
            }
            inv
        };
        let inv_u = invert(&perm_u);
        let inv_v = invert(&perm_v);

        let mut b = GraphBuilder::new(g.n_attr_values(Side::Upper), g.n_attr_values(Side::Lower))
            .with_edge_capacity(g.n_edges());
        b.ensure_vertices(g.n_upper(), g.n_lower());
        for (u, v) in g.edges() {
            b.add_edge(inv_u[u as usize], inv_v[v as usize]);
        }
        let ua: Vec<_> = perm_u.iter().map(|&o| g.attr(Side::Upper, o)).collect();
        let la: Vec<_> = perm_v.iter().map(|&o| g.attr(Side::Lower, o)).collect();
        b.set_attrs_upper(&ua);
        b.set_attrs_lower(&la);

        InducedSubgraph {
            graph: b.build().expect("relabeled graphs are valid"),
            upper_to_parent: perm_u
                .iter()
                .map(|&o| self.upper_to_parent[o as usize])
                .collect(),
            lower_to_parent: perm_v
                .iter()
                .map(|&o| self.lower_to_parent[o as usize])
                .collect(),
        }
    }
}

/// Induce the subgraph of `g` on the vertices where `keep_*` is true,
/// compacting ids on both sides. Edges survive iff both endpoints do.
///
/// `keep_upper.len()` must equal `g.n_upper()` and likewise for lower.
pub fn induce(g: &BipartiteGraph, keep_upper: &[bool], keep_lower: &[bool]) -> InducedSubgraph {
    assert_eq!(keep_upper.len(), g.n_upper(), "keep_upper length");
    assert_eq!(keep_lower.len(), g.n_lower(), "keep_lower length");

    let mut upper_map = vec![VertexId::MAX; g.n_upper()];
    let mut lower_map = vec![VertexId::MAX; g.n_lower()];
    let mut upper_to_parent = Vec::new();
    let mut lower_to_parent = Vec::new();
    for (old, &k) in keep_upper.iter().enumerate() {
        if k {
            upper_map[old] = upper_to_parent.len() as VertexId;
            upper_to_parent.push(old as VertexId);
        }
    }
    for (old, &k) in keep_lower.iter().enumerate() {
        if k {
            lower_map[old] = lower_to_parent.len() as VertexId;
            lower_to_parent.push(old as VertexId);
        }
    }

    let mut b = GraphBuilder::new(g.n_attr_values(Side::Upper), g.n_attr_values(Side::Lower));
    b.ensure_vertices(upper_to_parent.len(), lower_to_parent.len());
    for (u, v) in g.edges() {
        let (nu, nv) = (upper_map[u as usize], lower_map[v as usize]);
        if nu != VertexId::MAX && nv != VertexId::MAX {
            b.add_edge(nu, nv);
        }
    }
    let ua: Vec<_> = upper_to_parent
        .iter()
        .map(|&old| g.attr(Side::Upper, old))
        .collect();
    let la: Vec<_> = lower_to_parent
        .iter()
        .map(|&old| g.attr(Side::Lower, old))
        .collect();
    b.set_attrs_upper(&ua);
    b.set_attrs_lower(&la);

    InducedSubgraph {
        graph: b.build().expect("induced graphs are valid"),
        upper_to_parent,
        lower_to_parent,
    }
}

/// Keep a uniformly random `fraction` of the edges (both endpoints'
/// vertex sets and attributes are preserved; vertices may become
/// isolated). Deterministic in `seed`. This is the paper's Exp-5
/// protocol: "generate four subgraphs for each dataset by randomly
/// picking 20%-80% of the edges".
pub fn sample_edges(g: &BipartiteGraph, fraction: f64, seed: u64) -> BipartiteGraph {
    assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    edges.shuffle(&mut rng);
    let keep = ((edges.len() as f64) * fraction).round() as usize;
    edges.truncate(keep);

    let mut b = GraphBuilder::new(g.n_attr_values(Side::Upper), g.n_attr_values(Side::Lower))
        .with_edge_capacity(keep);
    b.ensure_vertices(g.n_upper(), g.n_lower());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.set_attrs_upper(g.attrs(Side::Upper));
    b.set_attrs_lower(g.attrs(Side::Lower));
    b.build().expect("sampled graphs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_uniform;

    #[test]
    fn induce_compacts_and_maps_back() {
        let g = random_uniform(6, 8, 30, 2, 2, 1);
        let keep_u: Vec<bool> = (0..6).map(|i| i % 2 == 0).collect();
        let keep_v: Vec<bool> = (0..8).map(|i| i < 5).collect();
        let sub = induce(&g, &keep_u, &keep_v);
        sub.graph.validate().unwrap();
        assert_eq!(sub.graph.n_upper(), 3);
        assert_eq!(sub.graph.n_lower(), 5);
        // Every surviving edge exists in the parent with mapped ids.
        for (u, v) in sub.graph.edges() {
            let (pu, pv) = (sub.to_parent(Side::Upper, u), sub.to_parent(Side::Lower, v));
            assert!(g.has_edge(pu, pv));
            assert_eq!(sub.graph.attr(Side::Upper, u), g.attr(Side::Upper, pu));
            assert_eq!(sub.graph.attr(Side::Lower, v), g.attr(Side::Lower, pv));
        }
        // Every parent edge with both endpoints kept survives.
        let survived = sub.graph.n_edges();
        let expected = g
            .edges()
            .filter(|&(u, v)| keep_u[u as usize] && keep_v[v as usize])
            .count();
        assert_eq!(survived, expected);
    }

    #[test]
    fn induce_nothing_and_everything() {
        let g = random_uniform(4, 4, 8, 2, 2, 2);
        let none = induce(&g, &[false; 4], &[false; 4]);
        assert_eq!(none.graph.n_upper(), 0);
        assert_eq!(none.graph.n_edges(), 0);
        let all = induce(&g, &[true; 4], &[true; 4]);
        assert_eq!(all.graph.n_edges(), g.n_edges());
        assert_eq!(
            all.set_to_parent(Side::Upper, &[0, 1, 2, 3]),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn relabel_degree_desc_preserves_structure() {
        let g = random_uniform(9, 11, 40, 3, 2, 17);
        let sub = induce(&g, &[true; 9], &[true; 11]);
        let rel = sub.relabel_degree_desc();
        rel.graph.validate().unwrap();
        assert_eq!(rel.graph.n_upper(), 9);
        assert_eq!(rel.graph.n_lower(), 11);
        assert_eq!(rel.graph.n_edges(), g.n_edges());
        // Degrees are non-increasing in the new ids on both sides.
        for side in [Side::Upper, Side::Lower] {
            let n = match side {
                Side::Upper => rel.graph.n_upper(),
                Side::Lower => rel.graph.n_lower(),
            };
            for v in 1..n as VertexId {
                assert!(rel.graph.degree(side, v - 1) >= rel.graph.degree(side, v));
            }
        }
        // Every relabeled edge maps back to a parent edge, with the
        // vertex attributes carried along.
        for (u, v) in rel.graph.edges() {
            let (pu, pv) = (rel.to_parent(Side::Upper, u), rel.to_parent(Side::Lower, v));
            assert!(g.has_edge(pu, pv));
            assert_eq!(rel.graph.attr(Side::Upper, u), g.attr(Side::Upper, pu));
            assert_eq!(rel.graph.attr(Side::Lower, v), g.attr(Side::Lower, pv));
        }
        // Parent-id sets are unchanged (it is a permutation).
        let mut ups: Vec<_> = rel.upper_to_parent.clone();
        ups.sort_unstable();
        assert_eq!(ups, (0..9).collect::<Vec<_>>());
        // Ties break by old id, so relabeling is deterministic.
        let again = sub.relabel_degree_desc();
        assert_eq!(again.upper_to_parent, rel.upper_to_parent);
        assert_eq!(again.lower_to_parent, rel.lower_to_parent);
    }

    #[test]
    fn sample_edges_fractions() {
        let g = random_uniform(20, 20, 200, 2, 2, 3);
        for (frac, want) in [(0.0, 0usize), (0.5, 100), (1.0, 200)] {
            let s = sample_edges(&g, frac, 7);
            assert_eq!(s.n_edges(), want, "fraction {frac}");
            assert_eq!(s.n_upper(), g.n_upper());
            assert_eq!(s.n_lower(), g.n_lower());
            s.validate().unwrap();
        }
        // Determinism + subset property.
        let a = sample_edges(&g, 0.3, 9);
        let b = sample_edges(&g, 0.3, 9);
        assert!(a.edges().zip(b.edges()).all(|(x, y)| x == y));
        for (u, v) in a.edges() {
            assert!(g.has_edge(u, v));
        }
    }
}
