//! Naive baselines `NSF` and `BNSF` (§V-A of the paper).
//!
//! The paper's comparison baselines keep the *graph* pruning
//! (FCore/CFCore — applied by the pipeline before calling in here) but
//! drop every *search-space* pruning rule: no Observation 2 branch
//! kill, no Observation 4 batch absorption, no Observation 5 size
//! cuts, and no candidate filtering by `α`-connectivity. The search
//! therefore explores (almost) the full subset tree of the fair side,
//! checking each node against the raw SSFBC definition.
//!
//! One structural cut remains: a branch whose `L'` is empty can never
//! satisfy `|L| ≥ α ≥ 1` again (L only shrinks), so recursion below it
//! would enumerate every subset of `V` to no effect; the paper's NSF
//! terminates on its datasets, which is only possible with this cut.

use crate::bfairbcem::BiSideExpander;
use crate::biclique::{BicliqueSink, EnumStats};
use crate::config::{Budget, BudgetClock, BudgetLane, FairParams, SharedBudget, VertexOrder};
use crate::fairset::{is_fair, is_maximal_fair_subset, AttrCounts};
use crate::ordering::side_order;
use bigraph::{intersect_sorted_count, intersect_sorted_into, BipartiteGraph, Side, VertexId};

/// Run `NSF` on `g` (assumed already pruned; fair side = lower).
pub fn nsf_on_pruned(
    g: &BipartiteGraph,
    params: FairParams,
    order: VertexOrder,
    budget: Budget,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    nsf_with_clock(g, params, order, budget.start(), sink)
}

/// [`nsf_on_pruned`] with an explicit clock — `BNSF` hands in a
/// shared-budget clock so the whole chain stops together.
pub(crate) fn nsf_with_clock(
    g: &BipartiteGraph,
    params: FairParams,
    order: VertexOrder,
    clock: BudgetClock,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    let mut s = Naive {
        g,
        params,
        n_attrs: (g.n_attr_values(Side::Lower) as usize).max(1),
        attrs: g.attrs(Side::Lower),
        sink,
        clock,
        emitted: 0,
    };
    let l: Vec<VertexId> = (0..g.n_upper() as VertexId).collect();
    let p = side_order(g, Side::Lower, order);
    let mut r = Vec::new();
    let mut counts = AttrCounts::zeros(s.n_attrs);
    s.rec(&l, &mut r, &mut counts, &p, &[]);
    EnumStats {
        nodes: s.clock.nodes,
        emitted: s.emitted,
        aborted: s.clock.exhausted,
        stop: s.clock.stop_reason(),
        peak_search_bytes: 0,
    }
}

/// Run `BNSF`: bi-side enumeration driven by `NSF`.
pub fn bnsf_on_pruned(
    g: &BipartiteGraph,
    params: FairParams,
    order: VertexOrder,
    budget: Budget,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    // One shared budget: the NSF stage is intermediate (exempt from
    // the result cap), and any tripped limit stops the whole chain.
    // The naive baseline stays on the sorted-vec substrate (it is the
    // reference the substrate runs are differentially tested against).
    let shared = SharedBudget::new(budget);
    let mut expander = BiSideExpander::with_clock(
        g,
        params,
        bigraph::candidate::AdjOps::Sorted(bigraph::candidate::SortedOps::new(g, Side::Upper)),
        shared.clock(BudgetLane::Expand),
    );
    let mut chain = crate::bfairbcem::BiChainSink {
        exp: &mut expander,
        sink,
    };
    let inner_clock = shared.clock(BudgetLane::Walk).exempt_results();
    let mut stats = nsf_with_clock(g, params, order, inner_clock, &mut chain);
    stats.emitted = expander.emitted;
    stats.aborted |= expander.aborted();
    stats.stop = stats.stop.or_else(|| expander.stop_reason());
    stats
}

struct Naive<'a> {
    g: &'a BipartiteGraph,
    params: FairParams,
    n_attrs: usize,
    attrs: &'a [bigraph::AttrValueId],
    sink: &'a mut dyn BicliqueSink,
    clock: BudgetClock,
    emitted: u64,
}

impl Naive<'_> {
    fn rec(
        &mut self,
        l: &[VertexId],
        r: &mut Vec<VertexId>,
        r_counts: &mut AttrCounts,
        p: &[VertexId],
        q: &[VertexId],
    ) {
        let mut l_new: Vec<VertexId> = Vec::new();
        for i in 0..p.len() {
            if !self.clock.tick() {
                return;
            }
            let x = p[i];
            intersect_sorted_into(l, self.g.neighbors(Side::Lower, x), &mut l_new);
            if l_new.is_empty() {
                continue; // structural cut (see module docs)
            }

            r.push(x);
            r_counts.inc(self.attrs[x as usize]);

            // Full candidate bookkeeping — no alpha filters.
            let mut q_new: Vec<VertexId> = Vec::new();
            let mut fc_counts = AttrCounts::zeros(self.n_attrs);
            for &u in q.iter().chain(&p[..i]) {
                let c = intersect_sorted_count(self.g.neighbors(Side::Lower, u), &l_new);
                if c == l_new.len() {
                    fc_counts.inc(self.attrs[u as usize]);
                }
                if c > 0 {
                    q_new.push(u);
                }
            }
            let mut p_new: Vec<VertexId> = Vec::new();
            for &v in &p[i + 1..] {
                let c = intersect_sorted_count(self.g.neighbors(Side::Lower, v), &l_new);
                if c == l_new.len() {
                    fc_counts.inc(self.attrs[v as usize]);
                }
                if c > 0 {
                    p_new.push(v);
                }
            }

            // Raw definition check at every node.
            if l_new.len() >= self.params.alpha as usize
                && is_fair(r_counts.as_slice(), self.params.beta, self.params.delta)
                && is_maximal_fair_subset(
                    r_counts.as_slice(),
                    fc_counts.as_slice(),
                    self.params.beta,
                    self.params.delta,
                )
                && self.clock.try_result()
            {
                let mut r_sorted = r.clone();
                r_sorted.sort_unstable();
                self.sink.emit(&l_new, &r_sorted);
                self.emitted += 1;
            }

            if !p_new.is_empty() {
                let l_child = l_new.clone();
                self.rec(&l_child, r, r_counts, &p_new, &q_new);
            }

            let v = r.pop().expect("restore");
            r_counts.dec(self.attrs[v as usize]);
            if self.clock.exhausted {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biclique::{Biclique, CollectSink};
    use crate::verify::{oracle_bsfbc, oracle_ssfbc};
    use bigraph::generate::random_uniform;
    use std::collections::BTreeSet;

    #[test]
    fn nsf_matches_oracle() {
        for seed in 0..20u64 {
            let g = random_uniform(7, 8, 26, 2, 2, seed);
            for params in [
                FairParams::unchecked(1, 1, 1),
                FairParams::unchecked(2, 1, 0),
                FairParams::unchecked(2, 2, 1),
            ] {
                let want = oracle_ssfbc(&g, params);
                let mut sink = CollectSink::default();
                let stats =
                    nsf_on_pruned(&g, params, VertexOrder::IdAsc, Budget::UNLIMITED, &mut sink);
                assert!(!stats.aborted);
                let got: BTreeSet<Biclique> = sink.bicliques.iter().cloned().collect();
                assert_eq!(got.len(), sink.bicliques.len(), "no duplicates");
                assert_eq!(got, want, "seed {seed} params {params}");
            }
        }
    }

    #[test]
    fn bnsf_matches_oracle() {
        for seed in 0..10u64 {
            let g = random_uniform(6, 7, 20, 2, 2, seed);
            let params = FairParams::unchecked(1, 1, 1);
            let want = oracle_bsfbc(&g, params);
            let mut sink = CollectSink::default();
            let stats = bnsf_on_pruned(
                &g,
                params,
                VertexOrder::DegreeDesc,
                Budget::UNLIMITED,
                &mut sink,
            );
            assert!(!stats.aborted);
            let got: BTreeSet<Biclique> = sink.bicliques.iter().cloned().collect();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn nsf_explores_more_nodes_than_fairbcem() {
        use crate::fairbcem::fairbcem_on_pruned;
        let g = random_uniform(10, 12, 60, 2, 2, 4);
        let params = FairParams::unchecked(2, 2, 1);
        let mut s1 = CollectSink::default();
        let naive = nsf_on_pruned(
            &g,
            params,
            VertexOrder::DegreeDesc,
            Budget::UNLIMITED,
            &mut s1,
        );
        let mut s2 = CollectSink::default();
        let smart = fairbcem_on_pruned(
            &g,
            params,
            VertexOrder::DegreeDesc,
            Budget::UNLIMITED,
            &mut s2,
        );
        assert!(
            naive.nodes >= smart.nodes,
            "naive {} vs fairbcem {}",
            naive.nodes,
            smart.nodes
        );
        let a: BTreeSet<Biclique> = s1.bicliques.into_iter().collect();
        let b: BTreeSet<Biclique> = s2.bicliques.into_iter().collect();
        assert_eq!(a, b);
    }
}
