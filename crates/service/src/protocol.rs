//! The service's versioned, line-oriented text protocol.
//!
//! # Grammar
//!
//! Requests are single lines, one command each:
//!
//! ```text
//! PING
//! LOAD <name> <path> [attrs=AU,AV]
//! GEN <name> <youtube|twitter|imdb|wiki-cat|dblp>
//! GEN <name> uniform:NU,NV,M[,SEED[,AU,AV]]
//! GRAPHS
//! DROP <name>
//! ADDEDGE <graph> <u> <v>
//! DELEDGE <graph> <u> <v>
//! ADDVERTEX <graph> <upper|lower> [attr=A]
//! SHARD <graph> index=I of=K [alpha=A]
//! ENUM <graph> <ssfbc|bsfbc|pssfbc|pbsfbc> alpha=A beta=B delta=D
//!      [theta=T] [threads=N] [limit=K] [deadline-ms=MS]
//!      [substrate=auto|sorted-vec|bitset] [count-only]
//!      [max=vertices|edges]
//! STATS
//! METRICS
//! SLOWLOG [n]
//! TRACE <on|off|sample=K>
//! SHUTDOWN
//! ```
//!
//! `SHARD` replaces a cataloged graph with shard `I` of its
//! deterministic `K`-way 2-hop-component partition
//! ([`bigraph::partition`]), in the parent id space. A scatter-gather
//! coordinator ([`crate::coordinator`]) fans `LOAD`/`GEN` + `SHARD`
//! out to `K` shard servers and merges their `ENUM` streams.
//!
//! `ADDEDGE`/`DELEDGE`/`ADDVERTEX` mutate a cataloged graph in place
//! (same catalog epoch, bumped per-update version): the service
//! repairs its incremental core state and surgically invalidates only
//! the cached plans whose pruned core the update touched.
//!
//! `METRICS` dumps the registry in Prometheus text exposition format
//! (`STATS` stays the flat `key value` dump). `SLOWLOG [n]` returns
//! the `n` (default: all retained) slowest queries with their span
//! trees. `TRACE` is per-connection: `on` appends a `# span ...`
//! breakdown block to every subsequent `ENUM` reply on this
//! connection, `sample=K` to every K-th, and `off` (the default)
//! disables it. Trace lines start with `#`, so payload consumers that
//! parse result lines can filter them without understanding spans.
//!
//! Command verbs are case-insensitive. Every reply is a block: one
//! status line — `OK <k>=<v>...` or `ERR <CODE> <message>` — followed
//! by zero or more payload lines, terminated by a line holding a
//! single `.`. On connect, a server greets with an `OK` block
//! (`OK fbe-service protocol=1`).
//!
//! # Error codes
//!
//! | code       | meaning                                         |
//! |------------|-------------------------------------------------|
//! | `BADCMD`   | unknown command verb                            |
//! | `BADARG`   | malformed or missing argument                   |
//! | `PARSE`    | unreadable request line (oversized, not UTF-8)  |
//! |            | or a `LOAD` stem escaping the data root         |
//! | `NOGRAPH`  | `ENUM`/`DROP` names a graph not in the catalog  |
//! | `BUSY`     | admission refused: workers and queue are full   |
//! | `IO`       | loading a graph from disk failed                |
//! | `SHARD`    | a shard server failed mid-fanout (coordinator)  |
//! | `SHUTDOWN` | server is stopping; command not accepted        |
//! | `INTERNAL` | the request handler panicked; the query failed  |
//!
//! `INTERNAL` is a degradation, not a protocol state: the engine
//! catches the panic ([`crate::engine`]), answers the offending
//! request with the error, and keeps serving every other connection.

use fair_biclique::config::{FairParams, ProParams, Substrate};
use fair_biclique::maximum::SizeMetric;
use fair_biclique::prepared::QueryModel;
use fbe_datasets::corpus::Dataset;
use std::io::Write;
use std::time::Duration;

/// Protocol version announced in the greeting.
pub const PROTOCOL_VERSION: u32 = 1;

/// Reply-block terminator line.
pub const TERMINATOR: &str = ".";

/// What an `ENUM` query emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumMode {
    /// Collect and return the results (subject to the result limit).
    Collect,
    /// Return only the count (streaming; no materialization).
    Count,
    /// Return the single largest result under a metric.
    Maximum(SizeMetric),
}

/// Per-query execution knobs of an `ENUM` request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnumOpts {
    /// Worker threads for this query (≥ 1; >1 uses the parallel
    /// engine).
    pub threads: usize,
    /// Result budget (`limit=K`); collecting queries fall back to the
    /// service default when absent.
    pub limit: Option<u64>,
    /// Wall-clock deadline covering queue wait + execution.
    pub deadline: Option<Duration>,
    /// Requested candidate substrate (part of the plan-cache key).
    pub substrate: Substrate,
    /// Output mode.
    pub mode: EnumMode,
}

impl Default for EnumOpts {
    fn default() -> Self {
        EnumOpts {
            threads: 1,
            limit: None,
            deadline: None,
            substrate: Substrate::Auto,
            mode: EnumMode::Collect,
        }
    }
}

/// How `GEN` builds a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenSpec {
    /// A scaled corpus dataset analog.
    Dataset(Dataset),
    /// `uniform:NU,NV,M[,SEED[,AU,AV]]`.
    Uniform {
        /// `|U|`.
        n_upper: usize,
        /// `|V|`.
        n_lower: usize,
        /// Edge count.
        m: usize,
        /// RNG seed.
        seed: u64,
        /// Attribute domain sizes.
        attrs: (u16, u16),
    },
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Load a graph from disk into the catalog.
    Load {
        /// Catalog name.
        name: String,
        /// `<stem>` or bare edge-list path.
        path: String,
        /// Attribute domain sizes.
        attrs: (u16, u16),
    },
    /// Generate a graph into the catalog.
    Gen {
        /// Catalog name.
        name: String,
        /// What to generate.
        spec: GenSpec,
    },
    /// List the catalog.
    Graphs,
    /// Remove a graph (and invalidate its cached plans).
    Drop {
        /// Catalog name.
        name: String,
    },
    /// Insert one edge into a cataloged graph.
    AddEdge {
        /// Catalog name.
        graph: String,
        /// Upper endpoint.
        u: bigraph::VertexId,
        /// Lower endpoint.
        v: bigraph::VertexId,
    },
    /// Remove one edge from a cataloged graph.
    DelEdge {
        /// Catalog name.
        graph: String,
        /// Upper endpoint.
        u: bigraph::VertexId,
        /// Lower endpoint.
        v: bigraph::VertexId,
    },
    /// Append one isolated vertex to a cataloged graph.
    AddVertex {
        /// Catalog name.
        graph: String,
        /// Which side gains the vertex.
        side: bigraph::Side,
        /// Attribute value of the new vertex.
        attr: bigraph::AttrValueId,
    },
    /// Restrict a cataloged graph to one shard of its deterministic
    /// 2-hop-component partition (same vertex-id space; only the
    /// shard's edges survive).
    Shard {
        /// Catalog name.
        graph: String,
        /// Shard index in `0..of`.
        index: usize,
        /// Total number of shards.
        of: usize,
        /// Common-neighbor threshold of the partition's 2-hop
        /// projection. `1` (the default) is exact for every model and
        /// parameter choice; a larger value is exact only for queries
        /// whose `alpha` is at least this.
        alpha: usize,
    },
    /// Run a fair-biclique query.
    Enum {
        /// Catalog name of the graph.
        graph: String,
        /// Model + parameters.
        model: QueryModel,
        /// Execution knobs.
        opts: EnumOpts,
    },
    /// Dump the metrics registry as flat `key value` lines.
    Stats,
    /// Dump the metrics registry in Prometheus text exposition format.
    Metrics,
    /// Return the slowest recorded queries with their span trees.
    Slowlog {
        /// Cap on returned entries (`None` = all retained).
        n: Option<usize>,
    },
    /// Set this connection's tracing mode for subsequent `ENUM`s.
    Trace {
        /// The new mode.
        mode: TraceMode,
    },
    /// Stop the server (cancels in-flight queries cooperatively).
    Shutdown,
}

/// Per-connection tracing mode (`TRACE` verb).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No tracing (the default for every new connection).
    #[default]
    Off,
    /// Trace every query.
    On,
    /// Trace every `K`-th query on the connection (the first traced
    /// query is the `K`-th after the toggle).
    Sample(u64),
}

impl std::fmt::Display for TraceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceMode::Off => f.write_str("off"),
            TraceMode::On => f.write_str("on"),
            TraceMode::Sample(k) => write!(f, "sample={k}"),
        }
    }
}

/// A reply block: status line plus payload, terminated by `.` on the
/// wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// `OK ...` or `ERR <CODE> <message>`.
    pub status: String,
    /// Zero or more payload lines.
    pub payload: Vec<String>,
}

impl Reply {
    /// An `OK` status with no payload.
    pub fn ok(status: impl Into<String>) -> Reply {
        let s = status.into();
        Reply {
            status: if s.is_empty() {
                "OK".to_string()
            } else {
                format!("OK {s}")
            },
            payload: Vec::new(),
        }
    }

    /// An error reply with a machine-readable code.
    pub fn err(code: &str, msg: impl std::fmt::Display) -> Reply {
        Reply {
            status: format!("ERR {code} {msg}"),
            payload: Vec::new(),
        }
    }

    /// True for `OK` replies.
    pub fn is_ok(&self) -> bool {
        self.status.starts_with("OK")
    }

    /// Serialize the block (status, payload, terminator).
    pub fn write_to(&self, w: &mut dyn Write) -> std::io::Result<()> {
        writeln!(w, "{}", self.status)?;
        for line in &self.payload {
            writeln!(w, "{line}")?;
        }
        writeln!(w, "{TERMINATOR}")
    }

    /// The greeting block a server sends on connect.
    pub fn greeting() -> Reply {
        Reply::ok(format!("fbe-service protocol={PROTOCOL_VERSION}"))
    }
}

fn parse_pair_u16(s: &str) -> Result<(u16, u16), String> {
    let (a, b) = s
        .split_once(',')
        .ok_or_else(|| format!("expected AU,AV, got {s:?}"))?;
    Ok((
        a.trim().parse().map_err(|e| format!("attrs: {e}"))?,
        b.trim().parse().map_err(|e| format!("attrs: {e}"))?,
    ))
}

fn parse_dataset(s: &str) -> Result<Dataset, String> {
    match s.to_ascii_lowercase().as_str() {
        "youtube" => Ok(Dataset::Youtube),
        "twitter" => Ok(Dataset::Twitter),
        "imdb" => Ok(Dataset::Imdb),
        "wiki-cat" | "wikicat" | "wiki" => Ok(Dataset::WikiCat),
        "dblp" => Ok(Dataset::Dblp),
        other => Err(format!("unknown dataset {other:?}")),
    }
}

fn parse_gen_spec(s: &str) -> Result<GenSpec, String> {
    if let Some(rest) = s.strip_prefix("uniform:") {
        let nums: Vec<&str> = rest.split(',').collect();
        if nums.len() != 3 && nums.len() != 4 && nums.len() != 6 {
            return Err(format!(
                "uniform spec wants NU,NV,M[,SEED[,AU,AV]], got {rest:?}"
            ));
        }
        let p = |i: usize| -> Result<u64, String> {
            nums[i]
                .trim()
                .parse::<u64>()
                .map_err(|e| format!("uniform spec: {e}"))
        };
        // Checked narrowing: a plain `as` cast would silently wrap
        // (e.g. an attr domain of 70000 became 4464), turning a typo
        // into a quietly different graph.
        let to_size = |i: usize| -> Result<usize, String> {
            usize::try_from(p(i)?).map_err(|_| format!("uniform spec: {} out of range", nums[i]))
        };
        let to_attr = |i: usize| -> Result<u16, String> {
            u16::try_from(p(i)?)
                .map_err(|_| format!("uniform spec: attr domain {} exceeds {}", nums[i], u16::MAX))
        };
        let (nu, nv, m) = (to_size(0)?, to_size(1)?, to_size(2)?);
        if nu == 0 || nv == 0 {
            return Err("uniform spec: sides must be non-empty".into());
        }
        let seed = if nums.len() >= 4 { p(3)? } else { 42 };
        let attrs = if nums.len() == 6 {
            (to_attr(4)?, to_attr(5)?)
        } else {
            (2, 2)
        };
        Ok(GenSpec::Uniform {
            n_upper: nu,
            n_lower: nv,
            m,
            seed,
            attrs,
        })
    } else {
        parse_dataset(s).map(GenSpec::Dataset)
    }
}

/// Parse the shared `<graph> <u> <v>` tail of `ADDEDGE`/`DELEDGE`.
fn parse_edge_op(rest: &[&str], add: bool) -> Result<Request, String> {
    let verb = if add { "ADDEDGE" } else { "DELEDGE" };
    let [graph, u, v] = rest else {
        return Err(format!("{verb} wants <graph> <u> <v>"));
    };
    let u = u
        .parse::<bigraph::VertexId>()
        .map_err(|e| format!("u: {e}"))?;
    let v = v
        .parse::<bigraph::VertexId>()
        .map_err(|e| format!("v: {e}"))?;
    let graph = graph.to_string();
    Ok(if add {
        Request::AddEdge { graph, u, v }
    } else {
        Request::DelEdge { graph, u, v }
    })
}

/// Split `token` at `=`, failing with a uniform message otherwise.
fn kv(token: &str) -> Result<(&str, &str), String> {
    token
        .split_once('=')
        .ok_or_else(|| format!("expected key=value, got {token:?}"))
}

fn parse_enum(graph: &str, model: &str, rest: &[&str]) -> Result<Request, String> {
    let model_l = model.to_ascii_lowercase();
    let (bi, pro) = match model_l.as_str() {
        "ssfbc" => (false, false),
        "bsfbc" => (true, false),
        "pssfbc" => (false, true),
        "pbsfbc" => (true, true),
        other => return Err(format!("unknown model {other:?}")),
    };
    let (mut alpha, mut beta, mut delta, mut theta) = (None, None, None, None);
    let mut opts = EnumOpts::default();
    for &tok in rest {
        if tok.eq_ignore_ascii_case("count-only") {
            opts.mode = EnumMode::Count;
            continue;
        }
        let (k, v) = kv(tok)?;
        match k.to_ascii_lowercase().as_str() {
            "alpha" => alpha = Some(v.parse::<u32>().map_err(|e| format!("alpha: {e}"))?),
            "beta" => beta = Some(v.parse::<u32>().map_err(|e| format!("beta: {e}"))?),
            "delta" => delta = Some(v.parse::<u32>().map_err(|e| format!("delta: {e}"))?),
            "theta" => theta = Some(v.parse::<f64>().map_err(|e| format!("theta: {e}"))?),
            "threads" => {
                opts.threads = v
                    .parse::<usize>()
                    .map_err(|e| format!("threads: {e}"))?
                    .max(1)
            }
            "limit" => opts.limit = Some(v.parse::<u64>().map_err(|e| format!("limit: {e}"))?),
            "deadline-ms" => {
                opts.deadline = Some(Duration::from_millis(
                    v.parse::<u64>().map_err(|e| format!("deadline-ms: {e}"))?,
                ))
            }
            "substrate" => opts.substrate = v.parse::<Substrate>()?,
            "max" => {
                opts.mode = EnumMode::Maximum(match v.to_ascii_lowercase().as_str() {
                    "vertices" | "v" => SizeMetric::Vertices,
                    "edges" | "e" => SizeMetric::Edges,
                    other => return Err(format!("max: unknown metric {other:?}")),
                })
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let alpha = alpha.ok_or("alpha= is required")?;
    let beta = beta.ok_or("beta= is required")?;
    let delta = delta.ok_or("delta= is required")?;
    let model = if pro {
        let theta = theta.ok_or("theta= is required for the proportion models")?;
        let p = ProParams::new(alpha, beta, delta, theta).map_err(|e| e.to_string())?;
        if bi {
            QueryModel::Pbsfbc(p)
        } else {
            QueryModel::Pssfbc(p)
        }
    } else {
        if theta.is_some() {
            return Err("theta= is only valid for the proportion models".into());
        }
        let p = FairParams::new(alpha, beta, delta).map_err(|e| e.to_string())?;
        if bi {
            QueryModel::Bsfbc(p)
        } else {
            QueryModel::Ssfbc(p)
        }
    };
    Ok(Request::Enum {
        graph: graph.to_string(),
        model,
        opts,
    })
}

/// Parse one request line. `Err` carries a human-readable message for
/// a `BADARG`/`BADCMD` reply.
pub fn parse_request(line: &str) -> Result<Request, Reply> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let Some((&verb, rest)) = tokens.split_first() else {
        return Err(Reply::err("BADCMD", "empty command"));
    };
    let badarg = |msg: String| Reply::err("BADARG", msg);
    match verb.to_ascii_uppercase().as_str() {
        "PING" => Ok(Request::Ping),
        "GRAPHS" => Ok(Request::Graphs),
        "STATS" => Ok(Request::Stats),
        "METRICS" => Ok(Request::Metrics),
        "SLOWLOG" => match rest {
            [] => Ok(Request::Slowlog { n: None }),
            [n] => Ok(Request::Slowlog {
                n: Some(n.parse().map_err(|e| badarg(format!("n: {e}")))?),
            }),
            _ => Err(badarg("SLOWLOG wants at most one count".into())),
        },
        "TRACE" => match rest {
            [arg] if arg.eq_ignore_ascii_case("on") => Ok(Request::Trace {
                mode: TraceMode::On,
            }),
            [arg] if arg.eq_ignore_ascii_case("off") => Ok(Request::Trace {
                mode: TraceMode::Off,
            }),
            [arg] => {
                let (k, v) = kv(arg).map_err(badarg)?;
                if !k.eq_ignore_ascii_case("sample") {
                    return Err(badarg(format!("TRACE wants on|off|sample=K, got {arg:?}")));
                }
                let k: u64 = v.parse().map_err(|e| badarg(format!("sample: {e}")))?;
                if k == 0 {
                    return Err(badarg("sample= must be at least 1".into()));
                }
                Ok(Request::Trace {
                    mode: TraceMode::Sample(k),
                })
            }
            _ => Err(badarg("TRACE wants exactly one of on|off|sample=K".into())),
        },
        "SHUTDOWN" => Ok(Request::Shutdown),
        "DROP" => match rest {
            [name] => Ok(Request::Drop {
                name: name.to_string(),
            }),
            _ => Err(badarg("DROP wants exactly one graph name".into())),
        },
        "ADDEDGE" => parse_edge_op(rest, true).map_err(badarg),
        "DELEDGE" => parse_edge_op(rest, false).map_err(badarg),
        "ADDVERTEX" => {
            let [graph, side, extra @ ..] = rest else {
                return Err(badarg(
                    "ADDVERTEX wants <graph> <upper|lower> [attr=A]".into(),
                ));
            };
            let side = match side.to_ascii_lowercase().as_str() {
                "upper" | "u" => bigraph::Side::Upper,
                "lower" | "v" => bigraph::Side::Lower,
                other => return Err(badarg(format!("unknown side {other:?}"))),
            };
            let mut attr = 0u16;
            for tok in extra {
                let (k, v) = kv(tok).map_err(badarg)?;
                match k.to_ascii_lowercase().as_str() {
                    "attr" => attr = v.parse::<u16>().map_err(|e| badarg(format!("attr: {e}")))?,
                    other => return Err(badarg(format!("unknown option {other:?}"))),
                }
            }
            Ok(Request::AddVertex {
                graph: graph.to_string(),
                side,
                attr,
            })
        }
        "LOAD" => {
            let [name, path, extra @ ..] = rest else {
                return Err(badarg("LOAD wants <name> <path> [attrs=AU,AV]".into()));
            };
            let mut attrs = (2u16, 2u16);
            for tok in extra {
                let (k, v) = kv(tok).map_err(badarg)?;
                match k.to_ascii_lowercase().as_str() {
                    "attrs" => attrs = parse_pair_u16(v).map_err(badarg)?,
                    other => return Err(badarg(format!("unknown option {other:?}"))),
                }
            }
            Ok(Request::Load {
                name: name.to_string(),
                path: path.to_string(),
                attrs,
            })
        }
        "GEN" => match rest {
            [name, spec] => Ok(Request::Gen {
                name: name.to_string(),
                spec: parse_gen_spec(spec).map_err(badarg)?,
            }),
            _ => Err(badarg(
                "GEN wants <name> <dataset|uniform:NU,NV,M,...>".into(),
            )),
        },
        "SHARD" => {
            let [graph, kvs @ ..] = rest else {
                return Err(badarg("SHARD wants <graph> index=I of=K [alpha=A]".into()));
            };
            let (mut index, mut of, mut alpha) = (None, None, 1usize);
            for tok in kvs {
                let (k, v) = kv(tok).map_err(badarg)?;
                match k.to_ascii_lowercase().as_str() {
                    "index" => {
                        index = Some(
                            v.parse::<usize>()
                                .map_err(|e| badarg(format!("index: {e}")))?,
                        )
                    }
                    "of" => of = Some(v.parse::<usize>().map_err(|e| badarg(format!("of: {e}")))?),
                    "alpha" => {
                        alpha = v
                            .parse::<usize>()
                            .map_err(|e| badarg(format!("alpha: {e}")))?
                    }
                    other => return Err(badarg(format!("unknown option {other:?}"))),
                }
            }
            let index = index.ok_or_else(|| badarg("index= is required".into()))?;
            let of = of.ok_or_else(|| badarg("of= is required".into()))?;
            if of == 0 {
                return Err(badarg("of= must be at least 1".into()));
            }
            if index >= of {
                return Err(badarg(format!("index={index} out of range for of={of}")));
            }
            if alpha == 0 {
                return Err(badarg("alpha= must be at least 1".into()));
            }
            Ok(Request::Shard {
                graph: graph.to_string(),
                index,
                of,
                alpha,
            })
        }
        "ENUM" => {
            let [graph, model, opts @ ..] = rest else {
                return Err(badarg("ENUM wants <graph> <model> <params...>".into()));
            };
            parse_enum(graph, model, opts).map_err(badarg)
        }
        other => Err(Reply::err("BADCMD", format!("unknown command {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_verbs_case_insensitively() {
        assert_eq!(parse_request("ping").unwrap(), Request::Ping);
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("Shutdown").unwrap(), Request::Shutdown);
        assert_eq!(parse_request("GRAPHS").unwrap(), Request::Graphs);
        assert_eq!(
            parse_request("DROP g").unwrap(),
            Request::Drop { name: "g".into() }
        );
    }

    #[test]
    fn parses_observability_verbs() {
        assert_eq!(parse_request("metrics").unwrap(), Request::Metrics);
        assert_eq!(
            parse_request("SLOWLOG").unwrap(),
            Request::Slowlog { n: None }
        );
        assert_eq!(
            parse_request("slowlog 5").unwrap(),
            Request::Slowlog { n: Some(5) }
        );
        assert!(parse_request("SLOWLOG x").is_err());
        assert!(parse_request("SLOWLOG 1 2").is_err());
        assert_eq!(
            parse_request("TRACE on").unwrap(),
            Request::Trace {
                mode: TraceMode::On
            }
        );
        assert_eq!(
            parse_request("trace OFF").unwrap(),
            Request::Trace {
                mode: TraceMode::Off
            }
        );
        assert_eq!(
            parse_request("TRACE sample=3").unwrap(),
            Request::Trace {
                mode: TraceMode::Sample(3)
            }
        );
        assert!(parse_request("TRACE").is_err());
        assert!(parse_request("TRACE maybe").is_err());
        assert!(parse_request("TRACE sample=0").is_err());
        assert!(parse_request("TRACE on off").is_err());
    }

    #[test]
    fn parses_load_and_gen() {
        assert_eq!(
            parse_request("LOAD g /tmp/x attrs=3,2").unwrap(),
            Request::Load {
                name: "g".into(),
                path: "/tmp/x".into(),
                attrs: (3, 2)
            }
        );
        assert_eq!(
            parse_request("GEN yt youtube").unwrap(),
            Request::Gen {
                name: "yt".into(),
                spec: GenSpec::Dataset(Dataset::Youtube)
            }
        );
        assert_eq!(
            parse_request("GEN u uniform:10,20,30,7").unwrap(),
            Request::Gen {
                name: "u".into(),
                spec: GenSpec::Uniform {
                    n_upper: 10,
                    n_lower: 20,
                    m: 30,
                    seed: 7,
                    attrs: (2, 2)
                }
            }
        );
        assert_eq!(
            parse_request("GEN u uniform:10,20,30,7,3,1").unwrap(),
            Request::Gen {
                name: "u".into(),
                spec: GenSpec::Uniform {
                    n_upper: 10,
                    n_lower: 20,
                    m: 30,
                    seed: 7,
                    attrs: (3, 1)
                }
            }
        );
        assert!(parse_request("GEN u uniform:10,20").is_err());
        assert!(parse_request("GEN u nope").is_err());
        assert!(parse_request("LOAD onlyname").is_err());
    }

    #[test]
    fn gen_spec_rejects_out_of_range_values_instead_of_wrapping() {
        // Regression: attr domains were narrowed with `as u16`, so
        // 70000 silently wrapped to 4464 and generated a different
        // graph than asked for. Now it is a parse error.
        let err = parse_request("GEN u uniform:10,20,30,7,70000,2").unwrap_err();
        assert!(err.status.starts_with("ERR BADARG"), "{}", err.status);
        assert!(err.status.contains("70000"), "{}", err.status);
        assert!(parse_request("GEN u uniform:10,20,30,7,2,70000").is_err());
        // u16::MAX itself is still a legal domain size.
        assert_eq!(
            parse_request("GEN u uniform:10,20,30,7,65535,2").unwrap(),
            Request::Gen {
                name: "u".into(),
                spec: GenSpec::Uniform {
                    n_upper: 10,
                    n_lower: 20,
                    m: 30,
                    seed: 7,
                    attrs: (65535, 2)
                }
            }
        );
        // Counts beyond the native pointer width are rejected, not
        // wrapped (only observable on 32-bit targets; on 64-bit every
        // u64 fits, so just assert the parse still succeeds there).
        let huge = format!("GEN u uniform:{},20,30", 1u64 << 40);
        if usize::try_from(1u64 << 40).is_ok() {
            assert!(parse_request(&huge).is_ok());
        } else {
            assert!(parse_request(&huge).is_err());
        }
    }

    #[test]
    fn parses_mutation_verbs() {
        assert_eq!(
            parse_request("ADDEDGE g 3 7").unwrap(),
            Request::AddEdge {
                graph: "g".into(),
                u: 3,
                v: 7
            }
        );
        assert_eq!(
            parse_request("deledge g 0 1").unwrap(),
            Request::DelEdge {
                graph: "g".into(),
                u: 0,
                v: 1
            }
        );
        assert_eq!(
            parse_request("ADDVERTEX g upper").unwrap(),
            Request::AddVertex {
                graph: "g".into(),
                side: bigraph::Side::Upper,
                attr: 0
            }
        );
        assert_eq!(
            parse_request("ADDVERTEX g lower attr=1").unwrap(),
            Request::AddVertex {
                graph: "g".into(),
                side: bigraph::Side::Lower,
                attr: 1
            }
        );
        assert!(parse_request("ADDEDGE g 3").is_err());
        assert!(parse_request("ADDEDGE g x 7").is_err());
        assert!(parse_request("DELEDGE g 3 7 9").is_err());
        assert!(parse_request("ADDVERTEX g sideways").is_err());
        assert!(parse_request("ADDVERTEX g upper attr=oops").is_err());
        assert!(parse_request("ADDVERTEX g upper bogus=1").is_err());
    }

    #[test]
    fn parses_shard() {
        assert_eq!(
            parse_request("SHARD g index=1 of=4").unwrap(),
            Request::Shard {
                graph: "g".into(),
                index: 1,
                of: 4,
                alpha: 1
            }
        );
        assert_eq!(
            parse_request("shard g of=2 index=0 alpha=3").unwrap(),
            Request::Shard {
                graph: "g".into(),
                index: 0,
                of: 2,
                alpha: 3
            }
        );
        assert!(parse_request("SHARD g index=0").is_err());
        assert!(parse_request("SHARD g of=2").is_err());
        assert!(parse_request("SHARD g index=2 of=2").is_err());
        assert!(parse_request("SHARD g index=0 of=0").is_err());
        assert!(parse_request("SHARD g index=0 of=2 alpha=0").is_err());
        assert!(parse_request("SHARD g index=0 of=2 bogus=1").is_err());
        assert!(parse_request("SHARD").is_err());
    }

    #[test]
    fn parses_enum_with_options() {
        let req = parse_request(
            "ENUM g pbsfbc alpha=2 beta=1 delta=1 theta=0.3 threads=4 \
             limit=10 deadline-ms=250 substrate=bitset count-only",
        )
        .unwrap();
        let Request::Enum { graph, model, opts } = req else {
            panic!("not an ENUM");
        };
        assert_eq!(graph, "g");
        assert_eq!(model.name(), "PBSFBC");
        assert_eq!(model.base(), FairParams::unchecked(2, 1, 1));
        assert_eq!(model.theta(), Some(0.3));
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.limit, Some(10));
        assert_eq!(opts.deadline, Some(Duration::from_millis(250)));
        assert_eq!(opts.substrate, Substrate::Bitset);
        assert_eq!(opts.mode, EnumMode::Count);
    }

    #[test]
    fn parses_enum_maximum_mode() {
        let req = parse_request("ENUM g bsfbc alpha=1 beta=1 delta=0 max=edges").unwrap();
        let Request::Enum { model, opts, .. } = req else {
            panic!();
        };
        assert_eq!(model.name(), "BSFBC");
        assert_eq!(opts.mode, EnumMode::Maximum(SizeMetric::Edges));
    }

    #[test]
    fn rejects_bad_enums() {
        // Missing params.
        assert!(parse_request("ENUM g ssfbc alpha=2 beta=1").is_err());
        // theta on an absolute model / missing on a proportion model.
        assert!(parse_request("ENUM g ssfbc alpha=2 beta=1 delta=1 theta=0.3").is_err());
        assert!(parse_request("ENUM g pssfbc alpha=2 beta=1 delta=1").is_err());
        // Invalid values.
        assert!(parse_request("ENUM g ssfbc alpha=0 beta=1 delta=1").is_err());
        assert!(parse_request("ENUM g pssfbc alpha=1 beta=1 delta=1 theta=0.9").is_err());
        assert!(parse_request("ENUM g ssfbc alpha=2 beta=1 delta=1 bogus=1").is_err());
        assert!(parse_request("ENUM g nsfbc alpha=2 beta=1 delta=1").is_err());
        // Unknown verb & empty line.
        assert!(parse_request("FROB x").is_err());
        assert!(parse_request("   ").is_err());
    }

    #[test]
    fn reply_blocks_serialize_with_terminator() {
        let mut r = Reply::ok("count=3");
        r.payload.push("L=[0] R=[1]".into());
        let mut buf = Vec::new();
        r.write_to(&mut buf).unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "OK count=3\nL=[0] R=[1]\n.\n"
        );
        assert!(r.is_ok());
        let e = Reply::err("BUSY", "queue full");
        assert!(!e.is_ok());
        assert_eq!(e.status, "ERR BUSY queue full");
        assert!(Reply::greeting().status.contains("protocol=1"));
    }
}
