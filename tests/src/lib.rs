//! Shared helpers for the cross-crate integration test suite:
//! definition-level validity checkers for every fair biclique model
//! (used to certify enumerator output on graphs too large for the
//! brute-force oracles).

#![forbid(unsafe_code)]

use bigraph::{BipartiteGraph, Side, VertexId};
use fair_biclique::biclique::Biclique;
use fair_biclique::config::{FairParams, ProParams};
use fair_biclique::fairset::{exists_fair_extension, is_fair, is_fair_pro, AttrCounts};

/// Assert `bc` is a complete bipartite subgraph of `g`.
pub fn assert_biclique(g: &BipartiteGraph, bc: &Biclique) {
    for &u in &bc.upper {
        for &v in &bc.lower {
            assert!(g.has_edge(u, v), "missing edge ({u},{v}) in {bc}");
        }
    }
}

fn lower_counts(g: &BipartiteGraph, vs: &[VertexId]) -> AttrCounts {
    AttrCounts::of(
        vs,
        g.attrs(Side::Lower),
        (g.n_attr_values(Side::Lower) as usize).max(1),
    )
}

fn upper_counts(g: &BipartiteGraph, us: &[VertexId]) -> AttrCounts {
    AttrCounts::of(
        us,
        g.attrs(Side::Upper),
        (g.n_attr_values(Side::Upper) as usize).max(1),
    )
}

/// Assert `bc` satisfies Definition 3 (single-side fair biclique) in
/// full, including maximality.
pub fn assert_valid_ssfbc(g: &BipartiteGraph, bc: &Biclique, params: FairParams) {
    assert_biclique(g, bc);
    assert!(bc.upper.len() as u32 >= params.alpha, "|L| < alpha in {bc}");
    let counts = lower_counts(g, &bc.lower);
    assert!(
        is_fair(counts.as_slice(), params.beta, params.delta),
        "lower side not fair in {bc}"
    );
    // L must be the full common neighborhood of R.
    let closure = g.common_neighbors(Side::Lower, &bc.lower);
    assert_eq!(closure, bc.upper, "L != N(R) in {bc}");
    // No fair extension using vertices fully connected to L.
    let cand = fully_connected_lower_candidates(g, bc);
    assert!(
        !exists_fair_extension(
            counts.as_slice(),
            cand.as_slice(),
            params.beta,
            params.delta,
            None
        ),
        "R extendable in {bc}"
    );
}

/// Assert `bc` satisfies Definition 5 (proportion single-side).
pub fn assert_valid_pssfbc(g: &BipartiteGraph, bc: &Biclique, pro: ProParams) {
    assert_biclique(g, bc);
    assert!(bc.upper.len() as u32 >= pro.base.alpha);
    let counts = lower_counts(g, &bc.lower);
    assert!(is_fair_pro(
        counts.as_slice(),
        pro.base.beta,
        pro.base.delta,
        pro.theta
    ));
    let closure = g.common_neighbors(Side::Lower, &bc.lower);
    assert_eq!(closure, bc.upper, "L != N(R) in {bc}");
    let cand = fully_connected_lower_candidates(g, bc);
    assert!(!exists_fair_extension(
        counts.as_slice(),
        cand.as_slice(),
        pro.base.beta,
        pro.base.delta,
        Some(pro.theta)
    ));
}

fn fully_connected_lower_candidates(g: &BipartiteGraph, bc: &Biclique) -> AttrCounts {
    let n_attrs = (g.n_attr_values(Side::Lower) as usize).max(1);
    let mut cand = AttrCounts::zeros(n_attrs);
    for v in 0..g.n_lower() as VertexId {
        if bc.lower.binary_search(&v).is_err()
            && bigraph::is_sorted_subset(&bc.upper, g.neighbors(Side::Lower, v))
        {
            cand.inc(g.attr(Side::Lower, v));
        }
    }
    cand
}

/// Assert `bc` satisfies Definition 4 (bi-side fair biclique) in full.
pub fn assert_valid_bsfbc(g: &BipartiteGraph, bc: &Biclique, params: FairParams) {
    assert_biclique(g, bc);
    let cu = upper_counts(g, &bc.upper);
    let cl = lower_counts(g, &bc.lower);
    assert!(
        is_fair(cu.as_slice(), params.alpha, params.delta),
        "upper not fair in {bc}"
    );
    assert!(
        is_fair(cl.as_slice(), params.beta, params.delta),
        "lower not fair in {bc}"
    );
    // Maximality: no fair extension on either side (single-side
    // extension suffices; see verify-module docs).
    let n_au = (g.n_attr_values(Side::Upper) as usize).max(1);
    let mut cand_u = AttrCounts::zeros(n_au);
    for u in 0..g.n_upper() as VertexId {
        if bc.upper.binary_search(&u).is_err()
            && bigraph::is_sorted_subset(&bc.lower, g.neighbors(Side::Upper, u))
        {
            cand_u.inc(g.attr(Side::Upper, u));
        }
    }
    assert!(
        !exists_fair_extension(
            cu.as_slice(),
            cand_u.as_slice(),
            params.alpha,
            params.delta,
            None
        ),
        "upper extendable in {bc}"
    );
    let cand_l = fully_connected_lower_candidates(g, bc);
    assert!(
        !exists_fair_extension(
            cl.as_slice(),
            cand_l.as_slice(),
            params.beta,
            params.delta,
            None
        ),
        "lower extendable in {bc}"
    );
}

/// A deterministic medium-size test graph: random background plus
/// planted dense blocks (the regime the paper's datasets live in).
pub fn medium_graph(seed: u64) -> BipartiteGraph {
    let base = bigraph::generate::random_uniform(30, 36, 220, 2, 2, seed);
    bigraph::generate::plant_bicliques(&base, 2, 5, 8, 1.0, seed ^ 0xb10c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_biclique::prelude::*;

    #[test]
    fn checkers_accept_enumerator_output() {
        let g = medium_graph(1);
        let params = FairParams::unchecked(2, 2, 1);
        let report = enumerate_ssfbc(&g, params, &RunConfig::default());
        assert!(!report.bicliques.is_empty());
        for bc in &report.bicliques {
            assert_valid_ssfbc(&g, bc, params);
        }
    }

    #[test]
    #[should_panic(expected = "missing edge")]
    fn checkers_reject_non_biclique() {
        let g = medium_graph(2);
        let fake = Biclique::new(vec![0, 1, 2], vec![0, 1, 2, 3]);
        assert_biclique(&g, &fake);
    }
}
