//! Regenerates Fig. 3 (FCore vs CFCore) of the paper. Run: `cargo bench --bench fig3_pruning`
//! (add `-- --quick` for a reduced sweep).

fn main() {
    let opts = fbe_bench::Opts::from_args();
    println!(
        "=== Fig. 3 (FCore vs CFCore) (budget {:?}/run, quick={}) ===",
        opts.budget, opts.quick
    );
    for (i, t) in fbe_bench::experiments::exp1_fig3(&opts)
        .into_iter()
        .enumerate()
    {
        t.print();
        t.save(&format!("fig3_pruning_{i}"));
    }
}
