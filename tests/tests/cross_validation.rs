//! Property-based cross-validation of every enumerator against the
//! brute-force oracles on random small graphs — the strongest
//! correctness guarantee in the repository.

use bigraph::{BipartiteGraph, GraphBuilder};
use fair_biclique::biclique::{Biclique, CollectSink};
use fair_biclique::config::{Budget, FairParams, ProParams, PruneKind, RunConfig, VertexOrder};
use fair_biclique::pipeline::{
    run_bsfbc, run_pbsfbc, run_pssfbc, run_ssfbc, BiAlgorithm, SsAlgorithm,
};
use fair_biclique::verify::{oracle_bsfbc, oracle_pbsfbc, oracle_pssfbc, oracle_ssfbc};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: a random attributed bipartite graph with `nu x nv`
/// vertices and the given edge density.
fn graph_strategy(nu: usize, nv: usize) -> impl Strategy<Value = BipartiteGraph> {
    (
        proptest::collection::vec(proptest::bool::weighted(0.4), nu * nv),
        proptest::collection::vec(0u16..2, nu),
        proptest::collection::vec(0u16..2, nv),
    )
        .prop_map(move |(cells, ua, la)| {
            let mut b = GraphBuilder::new(2, 2);
            b.ensure_vertices(nu, nv);
            for (i, &on) in cells.iter().enumerate() {
                if on {
                    b.add_edge((i / nv) as u32, (i % nv) as u32);
                }
            }
            b.set_attrs_upper(&ua);
            b.set_attrs_lower(&la);
            b.build().expect("valid")
        })
}

fn params_strategy() -> impl Strategy<Value = FairParams> {
    (1u32..4, 0u32..3, 0u32..3).prop_map(|(a, b, d)| FairParams::unchecked(a, b, d))
}

fn collect_ss(
    g: &BipartiteGraph,
    params: FairParams,
    algo: SsAlgorithm,
    prune: PruneKind,
    order: VertexOrder,
) -> BTreeSet<Biclique> {
    let cfg = RunConfig {
        prune,
        order,
        budget: Budget::UNLIMITED,
        ..RunConfig::default()
    };
    let mut sink = CollectSink::default();
    run_ssfbc(g, params, algo, &cfg, &mut sink);
    let set: BTreeSet<Biclique> = sink.bicliques.iter().cloned().collect();
    assert_eq!(set.len(), sink.bicliques.len(), "duplicate emissions");
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ssfbc_all_algorithms_match_oracle(
        g in graph_strategy(7, 9),
        params in params_strategy(),
        order in prop_oneof![Just(VertexOrder::IdAsc), Just(VertexOrder::DegreeDesc)],
    ) {
        let want = oracle_ssfbc(&g, params);
        for algo in [SsAlgorithm::Nsf, SsAlgorithm::FairBcem, SsAlgorithm::FairBcemPP] {
            for prune in [PruneKind::None, PruneKind::Colorful] {
                let got = collect_ss(&g, params, algo, prune, order);
                prop_assert_eq!(&got, &want, "algo {:?} prune {:?}", algo, prune);
            }
        }
    }

    #[test]
    fn bsfbc_all_algorithms_match_oracle(
        g in graph_strategy(6, 7),
        params in (1u32..3, 1u32..3, 0u32..3)
            .prop_map(|(a, b, d)| FairParams::unchecked(a, b, d)),
    ) {
        let want = oracle_bsfbc(&g, params);
        for algo in [BiAlgorithm::Bnsf, BiAlgorithm::BFairBcem, BiAlgorithm::BFairBcemPP] {
            for prune in [PruneKind::None, PruneKind::FCore, PruneKind::Colorful] {
                let cfg = RunConfig { prune, order: VertexOrder::DegreeDesc, ..RunConfig::default() };
                let mut sink = CollectSink::default();
                run_bsfbc(&g, params, algo, &cfg, &mut sink);
                let got: BTreeSet<Biclique> = sink.bicliques.iter().cloned().collect();
                prop_assert_eq!(got.len(), sink.bicliques.len(), "duplicates from {:?}", algo);
                prop_assert_eq!(&got, &want, "algo {:?} prune {:?}", algo, prune);
            }
        }
    }

    #[test]
    fn pssfbc_matches_oracle(
        g in graph_strategy(7, 8),
        theta in prop_oneof![Just(0.0), Just(0.3), Just(0.4), Just(0.5)],
        (a, b, d) in (1u32..3, 1u32..3, 0u32..3),
    ) {
        let pro = ProParams::new(a, b, d, theta).unwrap();
        let want = oracle_pssfbc(&g, pro);
        for prune in [PruneKind::None, PruneKind::Colorful] {
            let cfg = RunConfig { prune, order: VertexOrder::DegreeDesc, ..RunConfig::default() };
            let mut sink = CollectSink::default();
            run_pssfbc(&g, pro, &cfg, &mut sink);
            let got: BTreeSet<Biclique> = sink.bicliques.into_iter().collect();
            prop_assert_eq!(&got, &want, "prune {:?}", prune);
        }
    }

    #[test]
    fn pbsfbc_matches_oracle(
        g in graph_strategy(6, 6),
        theta in prop_oneof![Just(0.0), Just(0.35), Just(0.5)],
        d in 0u32..3,
    ) {
        let pro = ProParams::new(1, 1, d, theta).unwrap();
        let want = oracle_pbsfbc(&g, pro);
        let cfg = RunConfig::default();
        let mut sink = CollectSink::default();
        run_pbsfbc(&g, pro, &cfg, &mut sink);
        let got: BTreeSet<Biclique> = sink.bicliques.into_iter().collect();
        prop_assert_eq!(&got, &want);
    }

    #[test]
    fn maximal_bicliques_match_oracle(
        g in graph_strategy(7, 9),
        min_l in 1usize..4,
        min_r in 1usize..4,
    ) {
        use fair_biclique::mbea::maximal_bicliques;
        use fair_biclique::verify::oracle_maximal_bicliques;
        let want = oracle_maximal_bicliques(&g, min_l, min_r);
        let mut sink = CollectSink::default();
        maximal_bicliques(&g, min_l, min_r, VertexOrder::DegreeDesc, Budget::UNLIMITED, &mut sink);
        let got: BTreeSet<Biclique> = sink.bicliques.into_iter().collect();
        prop_assert_eq!(&got, &want);
    }
}
