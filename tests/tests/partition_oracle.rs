//! Rebuild oracle for [`bigraph::partition`]: enumerating each shard
//! of the 2-hop-component partition independently and pooling the
//! results reproduces the whole-graph enumeration exactly — for every
//! model — because a fair biclique's fair side is a clique in the
//! α-threshold 2-hop projection and cliques never span components.
//! At shard α = 1 (the default) this holds for every query parameter
//! choice, which is the property the scatter-gather coordinator
//! stands on.

use bigraph::partition::{plan_shards, shard_edges};
use bigraph::{BipartiteGraph, Side};
use fair_biclique::biclique::Biclique;
use fair_biclique::config::{FairParams, ProParams, RunConfig};
use fair_biclique::pipeline::{
    enumerate_bsfbc, enumerate_pbsfbc, enumerate_pssfbc, enumerate_ssfbc,
};
use fair_biclique::results::canonical_order;

fn sorted_cfg() -> RunConfig {
    RunConfig {
        sorted: true,
        ..RunConfig::default()
    }
}

/// Enumerate `model` over `g`, canonically ordered.
fn run_model(g: &BipartiteGraph, model: &str, params: FairParams, theta: f64) -> Vec<Biclique> {
    let cfg = sorted_cfg();
    match model {
        "ssfbc" => enumerate_ssfbc(g, params, &cfg).bicliques,
        "bsfbc" => enumerate_bsfbc(g, params, &cfg).bicliques,
        "pssfbc" => {
            let p = ProParams::new(params.alpha, params.beta, params.delta, theta).unwrap();
            enumerate_pssfbc(g, p, &cfg).bicliques
        }
        "pbsfbc" => {
            let p = ProParams::new(params.alpha, params.beta, params.delta, theta).unwrap();
            enumerate_pbsfbc(g, p, &cfg).bicliques
        }
        other => panic!("unknown model {other}"),
    }
}

/// Union of per-shard enumerations == whole-graph enumeration, with
/// each result found in exactly one shard.
fn assert_rebuild(g: &BipartiteGraph, k: usize, model: &str, params: FairParams, theta: f64) {
    let whole = run_model(g, model, params, theta);
    let plan = plan_shards(g, Side::Lower, 1, k);
    let mut pooled = Vec::new();
    for shard in 0..k {
        let sub = shard_edges(g, &plan, shard);
        let part = run_model(&sub, model, params, theta);
        // Disjointness: a result of this shard must not also appear in
        // any earlier shard (components partition the fair side).
        for bc in &part {
            assert!(
                !pooled.contains(bc),
                "{model} k={k}: result {bc} found in two shards"
            );
        }
        pooled.extend(part);
    }
    canonical_order(&mut pooled);
    assert_eq!(
        pooled, whole,
        "{model} k={k} α={} β={} δ={}: pooled shard results != whole-graph enumeration",
        params.alpha, params.beta, params.delta
    );
}

/// A uniform graph sparse enough to have several 2-hop components.
fn sparse_graph(seed: u64) -> BipartiteGraph {
    bigraph::generate::random_uniform(30, 30, 55, 2, 2, seed)
}

#[test]
fn shard_rebuild_matches_whole_graph_for_every_model() {
    let g = sparse_graph(11);
    let params = FairParams::new(1, 1, 1).unwrap();
    for model in ["ssfbc", "bsfbc", "pssfbc", "pbsfbc"] {
        for k in [1, 2, 3, 5] {
            assert_rebuild(&g, k, model, params, 0.3);
        }
    }
}

#[test]
fn shard_rebuild_holds_across_params_and_densities() {
    for (seed, m) in [(3u64, 40usize), (7, 70), (13, 120)] {
        let g = bigraph::generate::random_uniform(24, 24, m, 2, 2, seed);
        for (a, b, d) in [(1, 1, 1), (2, 1, 1), (2, 2, 1), (1, 1, 2)] {
            let params = FairParams::new(a, b, d).unwrap();
            assert_rebuild(&g, 3, "ssfbc", params, 0.25);
            assert_rebuild(&g, 3, "bsfbc", params, 0.25);
        }
    }
}

#[test]
fn more_shards_than_components_still_rebuilds() {
    // Tiny graph, huge K: most shards are empty, the rebuild is still
    // exact (empty shards enumerate nothing).
    let g = bigraph::generate::random_uniform(10, 10, 14, 2, 2, 5);
    let params = FairParams::new(1, 1, 1).unwrap();
    assert_rebuild(&g, 16, "ssfbc", params, 0.3);
    assert_rebuild(&g, 16, "pbsfbc", params, 0.3);
}
