//! Shared helpers for the example binaries (intentionally minimal).
