//! The `fbe` binary: thin wrapper around [`fbe_cli::run_to`].

#![forbid(unsafe_code)]

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let result = fbe_cli::run_to(&args, &mut out).and_then(|()| Ok(out.flush()?));
    match result {
        Ok(()) => {}
        // A closed pipe (`fbe enumerate | head`) is a normal way for a
        // consumer to stop reading — exit cleanly, not with a panic.
        Err(fbe_cli::CliError::Io(e)) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
